#include "cluster/mcl.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "cluster/components.hpp"
#include "dist/distmat.hpp"
#include "dist/summa.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/runtime.hpp"
#include "sparse/semiring.hpp"

namespace pastis::cluster {

namespace {

using sparse::SpMat;

/// One iteration's telemetry sample (both MCL paths): the chaos gauge plus
/// the per-iteration nnz / resident-bytes series as min-avg-max streams.
void record_iteration(const obs::Telemetry& telem,
                      const MclIterationStats& is) {
  if (telem.metrics == nullptr) return;
  auto& m = *telem.metrics;
  m.counter("mcl.iterations_total").add(1.0);
  m.gauge("mcl.chaos").set(is.chaos);
  m.gauge("mcl.column_cap").set(static_cast<double>(is.column_cap));
  m.min_avg_max("mcl.resident_bytes")
      .add(static_cast<double>(is.resident_bytes));
  m.min_avg_max("mcl.expansion_nnz")
      .add(static_cast<double>(is.expansion_nnz));
  m.min_avg_max("mcl.pruned_nnz").add(static_cast<double>(is.pruned_nnz));
  m.counter("mcl.dropout_columns")
      .add(static_cast<double>(is.dropout_columns));
  m.gauge("mcl.scratch_high_water_bytes")
      .set(static_cast<double>(is.scratch_high_water_bytes));
}

/// Contiguous equal-row chunks for the per-column passes. Chunking is
/// scheduling only: every row's output is computed identically and
/// concatenated in row order, so the chunk count never shows in results.
std::vector<std::size_t> row_chunks(std::size_t n_rows, std::size_t parts) {
  parts = std::max<std::size_t>(1, std::min(parts, n_rows));
  std::vector<std::size_t> bounds(parts + 1);
  for (std::size_t c = 0; c <= parts; ++c) {
    bounds[c] = n_rows * c / parts;
  }
  return bounds;
}

template <typename Fn>
void run_chunks(util::ThreadPool* pool, std::size_t n_chunks, Fn&& fn) {
  if (pool == nullptr || pool->size() <= 1 || n_chunks <= 1) {
    for (std::size_t c = 0; c < n_chunks; ++c) fn(c);
  } else {
    pool->parallel_for(n_chunks, fn);
  }
}

std::size_t pass_threads(util::ThreadPool* pool, int max_threads) {
  std::size_t t = pool != nullptr ? pool->size() : 1;
  if (max_threads > 0) t = std::min(t, static_cast<std::size_t>(max_threads));
  return t;
}

/// Column-stochastic flow matrix of `g` (stored transposed: DCSR row j is
/// column j of M), with self-loops added before normalization.
SpMat<float> build_flow_matrix(const SimilarityGraph& g, double loop_scale) {
  const SpMat<float>& adj = g.adjacency();
  const std::size_t n_rows = adj.n_nonempty_rows();
  if (n_rows == 0) return SpMat<float>(g.n_vertices(), g.n_vertices());

  std::vector<Index> row_ids(adj.row_ids().begin(), adj.row_ids().end());
  std::vector<Offset> row_ptr(n_rows + 1);
  row_ptr[0] = 0;
  for (std::size_t k = 0; k < n_rows; ++k) {
    row_ptr[k + 1] =
        row_ptr[k] + (adj.row_end(k) - adj.row_begin(k)) + 1;  // + self loop
  }
  std::vector<Index> cols(row_ptr.back());
  std::vector<float> vals(row_ptr.back());
  for (std::size_t k = 0; k < n_rows; ++k) {
    const Index v = adj.row_id(k);
    float wmax = 0.0f;
    for (Offset o = adj.row_begin(k); o < adj.row_end(k); ++o) {
      wmax = std::max(wmax, adj.val(o));
    }
    const float loop =
        std::max(1e-6f, static_cast<float>(loop_scale) * wmax);
    // Merge the sorted neighbour columns with the diagonal entry.
    Offset w = row_ptr[k];
    bool loop_placed = false;
    float sum = 0.0f;
    for (Offset o = adj.row_begin(k); o < adj.row_end(k); ++o) {
      if (!loop_placed && v < adj.col(o)) {
        cols[w] = v;
        vals[w] = loop;
        sum += loop;
        ++w;
        loop_placed = true;
      }
      cols[w] = adj.col(o);
      vals[w] = adj.val(o);
      sum += adj.val(o);
      ++w;
    }
    if (!loop_placed) {
      cols[w] = v;
      vals[w] = loop;
      sum += loop;
      ++w;
    }
    for (Offset o = row_ptr[k]; o < row_ptr[k + 1]; ++o) {
      vals[o] /= sum;
    }
  }
  return SpMat<float>::from_sorted_parts(g.n_vertices(), g.n_vertices(),
                                         std::move(row_ids),
                                         std::move(row_ptr), std::move(cols),
                                         std::move(vals));
}

/// Per-lane scratch of the column epilogue (pow cache + selection buffer);
/// lanes persist across iterations in MclBuffers so each hits its high
/// water once.
struct EpiScratch {
  std::vector<double> inflated;
  std::vector<std::pair<float, Index>> top;

  [[nodiscard]] std::uint64_t capacity_bytes() const {
    return static_cast<std::uint64_t>(inflated.capacity()) * sizeof(double) +
           static_cast<std::uint64_t>(top.capacity()) *
               sizeof(std::pair<float, Index>);
  }
};

/// The inflate + prune + renormalize + chaos pass over ONE flow column,
/// shaped as the fused-SpGEMM epilogue contract (spgemm_hash2p_fused):
/// given the column's sorted pre-epilogue entries it writes the survivors
/// and returns their count. The SAME functor runs inside the fused numeric
/// phase, the standalone inflate_prune sweep, and the distributed gather
/// fold — one float-op sequence, so every path is bit-identical.
///
/// Side outputs (col_chaos, dropout streaks) are per-column slots indexed
/// by the GLOBAL column id (`row + row_offset`): one writer per slot under
/// any scheduling, keeping the pass deterministic and race-free. The
/// column cap is read through a pointer because the budget feedback may
/// tighten it between an iteration's symbolic and numeric phases.
struct ColumnEpilogue {
  double inflation;
  float prune_threshold;
  const std::uint32_t* cap;  // live column cap (budget feedback target)
  double drop_eps;
  double* col_chaos;          // per global column, this iteration's chaos
  std::uint32_t* streak;      // dropout streaks (null = dropout off)
  Index row_offset;           // local row id -> global column id
  std::vector<EpiScratch>* lanes;
  std::size_t lane_base;      // distributed path: one lane block per rank

  std::size_t operator()(std::size_t lane, Index row, const Index* cols,
                         const float* vals, std::size_t n, Index* out_cols,
                         float* out_vals) const {
    EpiScratch& s = (*lanes)[lane_base + lane];
    // Inflate and normalize the column in one fixed-order scan (pow is
    // the pass's hot operation; computed once per entry).
    s.inflated.clear();
    double sum = 0.0;
    for (std::size_t o = 0; o < n; ++o) {
      s.inflated.push_back(
          std::pow(static_cast<double>(vals[o]), inflation));
      sum += s.inflated.back();
    }
    const auto inv = static_cast<float>(1.0 / sum);
    // Collect survivors of the threshold cut (the maximum entry always
    // survives, so no column ever empties).
    s.top.clear();
    float vmax = 0.0f;
    Index cmax = 0;
    for (std::size_t o = 0; o < n; ++o) {
      const float v = static_cast<float>(s.inflated[o]) * inv;
      if (v > vmax) {
        vmax = v;
        cmax = cols[o];
      }
      if (v >= prune_threshold) s.top.push_back({v, cols[o]});
    }
    if (s.top.empty()) s.top.push_back({vmax, cmax});
    // Top-k selection with a fixed tie-break (value desc, column asc).
    const std::uint32_t k = *cap;
    if (k != 0 && s.top.size() > k) {
      std::partial_sort(s.top.begin(),
                        s.top.begin() + static_cast<std::ptrdiff_t>(k),
                        s.top.end(), [](const auto& x, const auto& y) {
                          return x.first != y.first ? x.first > y.first
                                                    : x.second < y.second;
                        });
      s.top.resize(k);
      std::sort(s.top.begin(), s.top.end(),
                [](const auto& x, const auto& y) {
                  return x.second < y.second;
                });
    }
    // Renormalize survivors and accumulate the chaos of this column.
    float kept = 0.0f;
    for (const auto& [v, col] : s.top) kept += v;
    float col_max = 0.0f;
    double col_sumsq = 0.0;
    for (auto& [v, col] : s.top) {
      v /= kept;
      col_max = std::max(col_max, v);
      col_sumsq += static_cast<double>(v) * static_cast<double>(v);
    }
    const double chaos = static_cast<double>(col_max) - col_sumsq;
    const Index g = row + row_offset;
    col_chaos[g] = chaos;
    if (streak != nullptr) streak[g] = chaos < drop_eps ? streak[g] + 1 : 0;
    for (std::size_t o = 0; o < s.top.size(); ++o) {
      out_cols[o] = s.top[o].second;
      out_vals[o] = s.top[o].first;
    }
    return s.top.size();
  }
};

/// One standalone inflate + prune sweep over an already-built expanded
/// matrix — the unfused (expand-then-prune) oracle, running the SAME
/// ColumnEpilogue per row. Chunking is scheduling only; the chunk index is
/// the epilogue lane. Chaos lands in epi.col_chaos (scan it afterwards).
SpMat<float> inflate_prune(const SpMat<float>& E, const ColumnEpilogue& epi,
                           util::ThreadPool* pool, int max_threads) {
  const std::size_t n_rows = E.n_nonempty_rows();
  const std::vector<std::size_t> bounds =
      row_chunks(n_rows, pass_threads(pool, max_threads));
  const std::size_t n_chunks = bounds.empty() ? 0 : bounds.size() - 1;

  struct ChunkOut {
    std::vector<Index> cols;
    std::vector<float> vals;
    std::vector<Offset> row_nnz;  // per row of the chunk
  };
  std::vector<ChunkOut> outs(n_chunks);
  const std::uint32_t cap = *epi.cap;

  run_chunks(pool, n_chunks, [&](std::size_t c) {
    ChunkOut& out = outs[c];
    out.row_nnz.reserve(bounds[c + 1] - bounds[c]);
    for (std::size_t k = bounds[c]; k < bounds[c + 1]; ++k) {
      const Offset b = E.row_begin(k);
      const auto rn = static_cast<std::size_t>(E.row_end(k) - b);
      const std::size_t bound =
          cap == 0 ? rn : std::min<std::size_t>(rn, cap);
      const std::size_t at = out.cols.size();
      out.cols.resize(at + bound);
      out.vals.resize(at + bound);
      const std::size_t kept =
          epi(c, E.row_id(k), E.col_data(b), E.val_data(b), rn,
              out.cols.data() + at, out.vals.data() + at);
      out.cols.resize(at + kept);
      out.vals.resize(at + kept);
      out.row_nnz.push_back(static_cast<Offset>(kept));
    }
  });

  // Stitch the chunks in row order (every row kept >= 1 entry, so the
  // directory carries over unchanged).
  std::vector<Index> row_ids(E.row_ids().begin(), E.row_ids().end());
  std::vector<Offset> row_ptr;
  row_ptr.reserve(n_rows + 1);
  row_ptr.push_back(0);
  Offset nnz = 0;
  for (const auto& out : outs) {
    for (const Offset rn : out.row_nnz) {
      nnz += rn;
      row_ptr.push_back(nnz);
    }
  }
  std::vector<Index> cols;
  std::vector<float> vals;
  cols.reserve(nnz);
  vals.reserve(nnz);
  for (auto& out : outs) {
    cols.insert(cols.end(), out.cols.begin(), out.cols.end());
    vals.insert(vals.end(), out.vals.begin(), out.vals.end());
  }
  return SpMat<float>::from_sorted_parts(E.nrows(), E.ncols(),
                                         std::move(row_ids),
                                         std::move(row_ptr), std::move(cols),
                                         std::move(vals));
}

/// The recycled cross-iteration state of one MCL run: SpGEMM workspace,
/// epilogue lanes, the per-column chaos/dropout arrays, and spare DCSR
/// storage for the frozen-row stitch. Everything here is an allocation
/// cache or per-column slot store — reuse never changes results.
struct MclBuffers {
  sparse::SpGemmWorkspace<float> ws;
  std::vector<EpiScratch> lanes;
  std::vector<double> col_chaos;      // per global column, latest chaos
  std::vector<std::uint32_t> streak;  // consecutive sub-epsilon iterations
  std::vector<std::uint8_t> skip;     // this iteration's dropout mask
  std::vector<std::uint8_t> prev_skip;
  // Spare DCSR arrays cycling through the frozen-row stitch.
  std::vector<Index> sp_row_ids;
  std::vector<Offset> sp_row_ptr;
  std::vector<Index> sp_cols;
  std::vector<float> sp_vals;

  [[nodiscard]] std::uint64_t capacity_bytes() const {
    std::uint64_t b = ws.capacity_bytes();
    for (const auto& l : lanes) b += l.capacity_bytes();
    b += static_cast<std::uint64_t>(col_chaos.capacity()) * sizeof(double);
    b += static_cast<std::uint64_t>(streak.capacity()) *
         sizeof(std::uint32_t);
    b += skip.capacity() + prev_skip.capacity();
    b += static_cast<std::uint64_t>(sp_row_ids.capacity()) * sizeof(Index) +
         static_cast<std::uint64_t>(sp_row_ptr.capacity()) * sizeof(Offset) +
         static_cast<std::uint64_t>(sp_cols.capacity()) * sizeof(Index) +
         static_cast<std::uint64_t>(sp_vals.capacity()) * sizeof(float);
    return b;
  }
};

struct MaskCounts {
  std::size_t skipped = 0;
  std::uint64_t frozen_nnz = 0;
  std::uint64_t reentered = 0;
};

/// Builds this iteration's dropout mask over the rows of M (stripe-local
/// ids + row_offset = global column ids): column j skips recompute when
/// its own streak AND every support column's streak reached `after`.
/// The pass reads only LAST iteration's streaks, so a neighbour's reset
/// reaches dependants one iteration later — that lag is the re-entry rule.
/// One writer per skip/prev_skip slot; streaks are read-only here (the
/// frozen columns' streak bump is a separate pass, else the mask pass
/// would race with it).
MaskCounts build_skip_mask(const SpMat<float>& M, Index row_offset,
                           std::uint32_t after, MclBuffers& buf,
                           util::ThreadPool* pool, int max_threads) {
  const std::size_t n_rows = M.n_nonempty_rows();
  const std::vector<std::size_t> bounds =
      row_chunks(n_rows, pass_threads(pool, max_threads));
  const std::size_t n_chunks = bounds.empty() ? 0 : bounds.size() - 1;
  std::vector<MaskCounts> parts(n_chunks);
  run_chunks(pool, n_chunks, [&](std::size_t c) {
    MaskCounts& mc = parts[c];
    for (std::size_t k = bounds[c]; k < bounds[c + 1]; ++k) {
      const Index g = M.row_id(k) + row_offset;
      bool frozen = buf.streak[g] >= after;
      for (Offset o = M.row_begin(k); frozen && o < M.row_end(k); ++o) {
        frozen = buf.streak[M.col(o)] >= after;
      }
      const auto sv = static_cast<std::uint8_t>(frozen ? 1 : 0);
      buf.skip[g] = sv;
      if (frozen) {
        ++mc.skipped;
        mc.frozen_nnz += M.row_end(k) - M.row_begin(k);
      }
      if (buf.prev_skip[g] != 0 && !frozen) ++mc.reentered;
      buf.prev_skip[g] = sv;
    }
  });
  MaskCounts mc;
  for (const auto& x : parts) {
    mc.skipped += x.skipped;
    mc.frozen_nnz += x.frozen_nnz;
    mc.reentered += x.reentered;
  }
  return mc;
}

/// Frozen columns' streaks keep growing (their chaos is definitionally
/// unchanged below epsilon); active columns' streaks are updated by the
/// epilogue itself. Runs strictly AFTER the mask build — see above.
void bump_frozen_streaks(const SpMat<float>& M, Index row_offset,
                         MclBuffers& buf) {
  for (std::size_t k = 0; k < M.n_nonempty_rows(); ++k) {
    const Index g = M.row_id(k) + row_offset;
    if (buf.skip[g] != 0) ++buf.streak[g];
  }
}

/// Rebuilds the full flow matrix from the recomputed active columns (P)
/// and the frozen columns carried over from the previous matrix (M): a
/// linear row-order merge into the given spare DCSR arrays. Every row of
/// M lands in exactly one of the two sources (the expansion of an active
/// column is never empty — every referenced column is stochastic).
SpMat<float> stitch_frozen(const SpMat<float>& P, const SpMat<float>& M,
                           const std::uint8_t* skip, Index row_offset,
                           std::vector<Index>&& row_ids,
                           std::vector<Offset>&& row_ptr,
                           std::vector<Index>&& cols,
                           std::vector<float>&& vals) {
  row_ids.clear();
  row_ptr.clear();
  cols.clear();
  vals.clear();
  row_ptr.push_back(0);
  std::size_t kp = 0;
  for (std::size_t k = 0; k < M.n_nonempty_rows(); ++k) {
    const Index id = M.row_id(k);
    if (skip[id + row_offset] != 0) {
      const Offset b = M.row_begin(k);
      const Offset e = M.row_end(k);
      row_ids.push_back(id);
      cols.insert(cols.end(), M.col_data(b), M.col_data(e));
      vals.insert(vals.end(), M.val_data(b), M.val_data(e));
      row_ptr.push_back(static_cast<Offset>(cols.size()));
    } else if (kp < P.n_nonempty_rows() && P.row_id(kp) == id) {
      const Offset b = P.row_begin(kp);
      const Offset e = P.row_end(kp);
      row_ids.push_back(id);
      cols.insert(cols.end(), P.col_data(b), P.col_data(e));
      vals.insert(vals.end(), P.val_data(b), P.val_data(e));
      row_ptr.push_back(static_cast<Offset>(cols.size()));
      ++kp;
    }
  }
  return SpMat<float>::from_sorted_parts(M.nrows(), M.ncols(),
                                         std::move(row_ids),
                                         std::move(row_ptr), std::move(cols),
                                         std::move(vals));
}

/// Chaos gauge of the flow matrix: max over its columns of the per-column
/// chaos slots. With dropout, frozen columns contribute their last
/// computed (sub-epsilon) value; without, every slot was written this
/// iteration, reproducing the fold the old per-chunk max computed.
double chaos_of(const SpMat<float>& M, Index row_offset,
                const std::vector<double>& col_chaos) {
  double chaos = 0.0;
  for (std::size_t k = 0; k < M.n_nonempty_rows(); ++k) {
    chaos = std::max(chaos, col_chaos[M.row_id(k) + row_offset]);
  }
  return chaos;
}

/// Logical DCSR bytes of a non-empty float matrix with `nonempty_rows`
/// rows in the directory and `nnz` stored entries — exactly
/// SpMat<float>::bytes(), so the distributed path can reproduce the
/// shared-memory path's global resident-bytes numbers (and hence its
/// budget-tightening decisions) bit-for-bit from stripe counts alone.
std::uint64_t dcsr_bytes(std::uint64_t nonempty_rows, std::uint64_t nnz) {
  if (nnz == 0) return 0;  // empty SpMat stores nothing, not even row_ptr
  return nonempty_rows * sizeof(Index) + (nonempty_rows + 1) * sizeof(Offset) +
         nnz * (sizeof(Index) + sizeof(float));
}

/// (rows, nnz) of rank `rank`'s row stripe of the 2D-tiled `A`, computed
/// from the tile directories BEFORE the gather materializes it — the
/// numbers the budget feedback needs ahead of the fused gather fold, and
/// exactly what the gathered stripe will contain.
void stripe_pre_counts(const sim::ProcGrid& grid,
                       const dist::DistSpMat<float>& A, int rank,
                       std::vector<std::uint8_t>& seen,
                       std::uint64_t* rows_out, std::uint64_t* nnz_out) {
  const int side = grid.side();
  const int p = grid.size();
  const Index n = A.nrows();
  const int gi = grid.row_of(rank);
  const Index r0 = sim::ProcGrid::split_point(n, p, rank);
  const Index r1 = sim::ProcGrid::split_point(n, p, rank + 1);
  const Index base = A.row_begin(gi);
  seen.assign(static_cast<std::size_t>(r1 - r0), 0);
  std::uint64_t rows = 0;
  std::uint64_t nnz = 0;
  for (int s = 0; s < side; ++s) {
    const auto& t = A.local(grid.rank_of(gi, s));
    const auto ids = t.row_ids();
    const auto lo = static_cast<std::size_t>(
        std::lower_bound(ids.begin(), ids.end(), r0 - base) - ids.begin());
    const auto hi = static_cast<std::size_t>(
        std::lower_bound(ids.begin(), ids.end(), r1 - base) - ids.begin());
    for (std::size_t k = lo; k < hi; ++k) {
      nnz += t.row_end(k) - t.row_begin(k);
      auto& sv = seen[static_cast<std::size_t>(t.row_id(k) - (r0 - base))];
      if (sv == 0) {
        sv = 1;
        ++rows;
      }
    }
  }
  *rows_out = rows;
  *nnz_out = nnz;
}

/// Vertically concatenates per-rank row stripes (stripe r = global rows
/// [split(n, p, r), split(n, p, r+1)), stripe-local ids) back into one
/// global matrix. Rows ascend across stripes, so the DCSR arrays
/// concatenate directly — exact values, no sort.
SpMat<float> concat_row_stripes(const std::vector<SpMat<float>>& stripes,
                                Index n) {
  std::vector<Index> row_ids;
  std::vector<Offset> row_ptr;
  std::vector<Index> cols;
  std::vector<float> vals;
  row_ptr.push_back(0);
  Index offset = 0;
  for (const auto& s : stripes) {
    for (std::size_t k = 0; k < s.n_nonempty_rows(); ++k) {
      row_ids.push_back(s.row_id(k) + offset);
      for (Offset o = s.row_begin(k); o < s.row_end(k); ++o) {
        cols.push_back(s.col(o));
        vals.push_back(s.val(o));
      }
      row_ptr.push_back(static_cast<Offset>(cols.size()));
    }
    offset += s.nrows();
  }
  return SpMat<float>::from_sorted_parts(n, n, std::move(row_ids),
                                         std::move(row_ptr), std::move(cols),
                                         std::move(vals));
}

/// Clusters = connected components of the converged flow's symmetrized
/// support (entries >= interpret_threshold).
Clustering interpret(const SpMat<float>& M, Index n, float threshold,
                     util::ThreadPool* pool) {
  std::vector<sparse::Triple<float>> support;
  M.for_each([&](Index j, Index i, float v) {
    if (i != j && v >= threshold) {
      support.push_back({i, j, v});
      support.push_back({j, i, v});
    }
  });
  const auto adj = SpMat<float>::from_triples(
      n, n, std::move(support),
      [](float& acc, const float& v) { acc = std::max(acc, v); });
  return components_of_adjacency(adj, pool);
}

/// The distributed MCL loop (HipMCL's shape over the simulated grid): the
/// transposed flow matrix lives as per-rank row stripes (every flow column
/// whole on one rank — the layout inflate/prune/chaos need), expansion
/// scatters to the 2D tiling and runs the gather-stages SUMMA (bitwise
/// equal to the local kernel — dist/summa.hpp), and the expanded matrix
/// gathers back to stripes for the rank-local column scans — with the
/// fused path folding the ColumnEpilogue into the gather itself
/// (gather_row_stripes_fused), so each column is pruned as it is
/// assembled and only the pruned stripe materializes. All
/// result-affecting decisions (per-column prune, global budget
/// tightening, dropout masks) are bit-compatible with the shared-memory
/// loop, so assignments are identical for any grid side; the per-rank
/// ledger and clocks are what the grid changes.
Clustering markov_cluster_distributed(const SimilarityGraph& g,
                                      const MclOptions& opt, MclStats& st,
                                      util::ThreadPool* pool) {
  const int side = std::max(1, opt.grid_side);
  sim::SimRuntime rt(side * side, opt.machine,
                     pool != nullptr ? pool : &util::ThreadPool::global());
  const int p = rt.nprocs();
  const sim::ProcGrid& grid = rt.grid();
  st.grid_side = side;

  SpMat<float> M0 = build_flow_matrix(g, opt.self_loop_scale);
  const Index n = g.n_vertices();
  if (M0.empty()) {
    st.converged = true;
    st.rank_peak_resident_bytes.assign(static_cast<std::size_t>(p), 0);
    std::vector<Index> labels(g.n_vertices());
    std::iota(labels.begin(), labels.end(), 0);
    return canonicalize(labels);
  }

  // Initial distribution: stripe r (global rows [split(n,p,r), split(n,p,r+1))
  // of the transposed flow matrix) becomes rank r's resident state.
  std::vector<SpMat<float>> stripes(static_cast<std::size_t>(p));
  rt.spmd([&](int r) {
    const Index r0 = sim::ProcGrid::split_point(n, p, r);
    const Index r1 = sim::ProcGrid::split_point(n, p, r + 1);
    stripes[static_cast<std::size_t>(r)] = M0.extract(r0, r1, 0, n);
    const std::uint64_t b = stripes[static_cast<std::size_t>(r)].bytes();
    auto& clock = rt.clock(r);
    clock.charge(sim::Comp::kSparseOther,
                 rt.model().sparse_stream_time(b) + rt.model().p2p_time(b));
    clock.bytes_recv += b;
    clock.add_resident(b);
  });
  M0 = SpMat<float>();

  const bool fused =
      opt.fused && opt.kernel == sparse::SpGemmKernel::kHash2Phase;
  const bool dropout = opt.dropout_iterations != 0;
  const double drop_eps =
      opt.dropout_epsilon > 0.0 ? opt.dropout_epsilon : opt.chaos_epsilon;

  MclBuffers buf;
  buf.col_chaos.assign(n, 0.0);
  if (dropout) {
    buf.streak.assign(n, 0);
    buf.skip.assign(n, 0);
    buf.prev_skip.assign(n, 0);
  }
  // One epilogue lane per rank: the fused gather fold passes the rank as
  // the lane, the per-rank unfused sweep offsets by its lane_base.
  buf.lanes.resize(static_cast<std::size_t>(p));

  std::uint32_t cap = opt.max_column_entries;
  const ColumnEpilogue epi{opt.inflation,
                           opt.prune_threshold,
                           &cap,
                           drop_eps,
                           buf.col_chaos.data(),
                           dropout ? buf.streak.data() : nullptr,
                           /*row_offset=*/0,
                           &buf.lanes,
                           /*lane_base=*/0};

  for (int it = 0; it < opt.max_iterations; ++it) {
    MclIterationStats is;
    MaskCounts mc;
    if (dropout) {
      // Mask pass (reads last iteration's streaks only; skip/prev_skip
      // slots are rank-disjoint), then the serial frozen-streak bump.
      std::vector<MaskCounts> rank_mc(static_cast<std::size_t>(p));
      rt.spmd([&](int r) {
        const auto ri = static_cast<std::size_t>(r);
        const Index r0 = sim::ProcGrid::split_point(n, p, r);
        rank_mc[ri] = build_skip_mask(stripes[ri], r0,
                                      opt.dropout_iterations, buf, nullptr, 0);
      });
      std::size_t total_rows = 0;
      for (int r = 0; r < p; ++r) {
        const auto ri = static_cast<std::size_t>(r);
        const Index r0 = sim::ProcGrid::split_point(n, p, r);
        bump_frozen_streaks(stripes[ri], r0, buf);
        mc.skipped += rank_mc[ri].skipped;
        mc.frozen_nnz += rank_mc[ri].frozen_nnz;
        mc.reentered += rank_mc[ri].reentered;
        total_rows += stripes[ri].n_nonempty_rows();
      }
      if (mc.skipped == total_rows) {
        // Every column froze below the dropout epsilon: the flow is
        // settled even if the (stale) chaos gauge still reads above
        // chaos_epsilon — only reachable when dropout_epsilon exceeds it.
        st.converged = true;
        break;
      }
      is.dropout_columns = static_cast<std::uint32_t>(mc.skipped);
      is.reentered_columns = static_cast<std::uint32_t>(mc.reentered);
    }
    const bool masked = dropout && mc.skipped != 0;

    // Global (rows, nnz) of M from the stripes — the shared-memory
    // resident-bytes numbers, reproduced exactly.
    std::uint64_t m_rows = 0, m_nnz = 0;
    for (const auto& s : stripes) {
      m_rows += s.n_nonempty_rows();
      m_nnz += s.nnz();
    }

    // Expand: stripes → 2D tiles → gather-stages SUMMA → E stripes.
    auto Md = dist::scatter_row_stripes(rt, stripes, n,
                                        sim::Comp::kSparseOther, pool);
    std::vector<std::uint64_t> stripe_bytes(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      stripe_bytes[static_cast<std::size_t>(r)] =
          stripes[static_cast<std::size_t>(r)].bytes();
    }
    // Under an active mask the stripes stay resident for the frozen-row
    // stitch; the ledger still swaps them out at expand time (the frozen
    // carry-over is not double-counted — a deliberate approximation).
    if (!masked) {
      for (auto& s : stripes) s = SpMat<float>();
    }

    // A-side dropout masking is tile-local filtering: the mask is globally
    // known, so no extra wire traffic — each rank drops its frozen tile
    // rows before the SUMMA. B stays the full Md (frozen columns still
    // feed active products).
    dist::DistSpMat<float> Ad;
    std::vector<std::uint64_t> ad_tile_bytes(static_cast<std::size_t>(p), 0);
    if (masked) {
      Ad = dist::DistSpMat<float>(grid, n, n);
      rt.spmd([&](int r) {
        const Index base = Md.row_begin(grid.row_of(r));
        Ad.local(r) = Md.local(r).pruned([&](Index rr, Index, float) {
          return buf.skip[rr + base] == 0;
        });
        const std::uint64_t b = Ad.local(r).bytes();
        ad_tile_bytes[static_cast<std::size_t>(r)] = b;
        // Transient: streamed once, never entered into the resident ledger
        // (it is charged against the rank budget below instead).
        rt.clock(r).charge(
            sim::Comp::kSparseOther,
            rt.model().sparse_stream_time(Md.local(r).bytes() + b));
      });
    }
    const dist::DistSpMat<float>& A_op = masked ? Ad : Md;

    // Ledger: the stripe is shipped out, the tile plus the gathered SUMMA
    // strips (the rank's full grid-row of A and grid-column of B) come in.
    std::vector<std::uint64_t> strip_bytes(static_cast<std::size_t>(p), 0);
    rt.spmd([&](int r) {
      const int gi = grid.row_of(r);
      const int gj = grid.col_of(r);
      std::uint64_t b = 0;
      for (int s = 0; s < side; ++s) {
        b += A_op.local(grid.rank_of(gi, s)).bytes() +
             Md.local(grid.rank_of(s, gj)).bytes();
      }
      strip_bytes[static_cast<std::size_t>(r)] = b;
      auto& clock = rt.clock(r);
      clock.sub_resident(stripe_bytes[static_cast<std::size_t>(r)]);
      clock.add_resident(Md.local(r).bytes() + b);
    });

    const std::uint64_t products_before = st.spgemm.products;
    dist::SummaOptions sopt;
    sopt.kernel = opt.kernel;
    sopt.pool = pool;
    sopt.spgemm_threads = opt.max_threads;
    sopt.gather_stages = true;  // bitwise-exact float fold (see summa.hpp)
    auto Ed = dist::summa<sparse::PlusTimes<float>>(rt, A_op, Md, sopt,
                                                    &st.spgemm);

    rt.spmd([&](int r) {
      rt.clock(r).add_resident(Ed.local(r).bytes());
      rt.clock(r).sub_resident(strip_bytes[static_cast<std::size_t>(r)]);
    });

    std::vector<std::uint64_t> md_tile_bytes(static_cast<std::size_t>(p));
    std::vector<std::uint64_t> ed_tile_bytes(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      md_tile_bytes[static_cast<std::size_t>(r)] = Md.local(r).bytes();
      ed_tile_bytes[static_cast<std::size_t>(r)] = Ed.local(r).bytes();
    }

    // Pre-gather stripe shapes from the tile directories: the budget
    // feedback fires BEFORE the gather fold, mirroring the shared-memory
    // fused kernel's symbolic→tighten→numeric ordering — and the counts
    // equal the gathered stripes' exactly, so the decisions match the
    // expand-then-prune sequence bit-for-bit.
    std::vector<std::uint64_t> pre_rows_r(static_cast<std::size_t>(p));
    std::vector<std::uint64_t> pre_nnz_r(static_cast<std::size_t>(p));
    std::vector<std::uint8_t> seen;
    std::uint64_t e_rows = 0, e_nnz = 0;
    for (int r = 0; r < p; ++r) {
      const auto ri = static_cast<std::size_t>(r);
      stripe_pre_counts(grid, Ed, r, seen, &pre_rows_r[ri], &pre_nnz_r[ri]);
      e_rows += pre_rows_r[ri];
      e_nnz += pre_nnz_r[ri];
    }

    is.expansion_products = st.spgemm.products - products_before;
    is.expansion_nnz = e_nnz;
    is.resident_bytes = dcsr_bytes(m_rows, m_nnz) + dcsr_bytes(e_rows, e_nnz);
    st.peak_resident_bytes =
        std::max(st.peak_resident_bytes, is.resident_bytes);
    // Global budget feedback: the SAME decision, from the SAME numbers, as
    // the shared-memory loop — this is what keeps assignments identical
    // across grid sides under a binding global budget.
    if (opt.memory_budget_bytes != 0 &&
        is.resident_bytes > opt.memory_budget_bytes) {
      cap = cap == 0 ? 256 : std::max<std::uint32_t>(4, cap / 2);
      ++st.budget_tightenings;
    }
    // Per-rank budget feedback (tile + strips during expansion, tile +
    // stripe around the gather): deterministic, but grid-side-dependent —
    // see MclOptions::rank_memory_budget_bytes.
    std::uint64_t max_rank = 0;
    for (int r = 0; r < p; ++r) {
      const auto ri = static_cast<std::size_t>(r);
      const std::uint64_t f_expand = md_tile_bytes[ri] + ad_tile_bytes[ri] +
                                     strip_bytes[ri] + ed_tile_bytes[ri];
      const std::uint64_t f_gather =
          md_tile_bytes[ri] + ed_tile_bytes[ri] +
          dcsr_bytes(pre_rows_r[ri], pre_nnz_r[ri]);
      max_rank = std::max({max_rank, f_expand, f_gather});
    }
    is.max_rank_resident_bytes = max_rank;
    if (opt.rank_memory_budget_bytes != 0 &&
        max_rank > opt.rank_memory_budget_bytes) {
      cap = cap == 0 ? 256 : std::max<std::uint32_t>(4, cap / 2);
      ++st.rank_budget_tightenings;
    }
    is.column_cap = cap;

    // Inflate + prune + chaos via the shared ColumnEpilogue — fused into
    // the gather fold (each column pruned as its tile segments merge, only
    // the pruned stripe materializes) or as the rank-local sweep over the
    // gathered stripe. Row-identical to the shared-memory pass either way.
    std::vector<SpMat<float>> pruned_stripes;
    if (fused) {
      obs::Span fspan(opt.telemetry.tracer, "mcl.fused_epilogue");
      fspan.arg("pre_nnz", static_cast<double>(e_nnz));
      fspan.arg("dropout_columns", static_cast<double>(is.dropout_columns));
      pruned_stripes =
          dist::gather_row_stripes_fused(rt, Ed, epi, cap,
                                         sim::Comp::kSparseOther);
      rt.spmd([&](int r) {
        const auto ri = static_cast<std::size_t>(r);
        const std::uint64_t pruned_b = pruned_stripes[ri].bytes();
        auto& clock = rt.clock(r);
        clock.charge(sim::Comp::kSparseOther,
                     rt.model().sparse_stream_time(pruned_b));
        clock.add_resident(pruned_b);
        clock.sub_resident(md_tile_bytes[ri] + ed_tile_bytes[ri]);
      });
    } else {
      auto e_stripes = dist::gather_row_stripes(rt, Ed,
                                                sim::Comp::kSparseOther, pool);
      rt.spmd([&](int r) {
        rt.clock(r).add_resident(
            e_stripes[static_cast<std::size_t>(r)].bytes());
        rt.clock(r).sub_resident(md_tile_bytes[static_cast<std::size_t>(r)] +
                                 ed_tile_bytes[static_cast<std::size_t>(r)]);
      });
      pruned_stripes.resize(static_cast<std::size_t>(p));
      rt.spmd([&](int r) {
        const auto ri = static_cast<std::size_t>(r);
        const Index r0 = sim::ProcGrid::split_point(n, p, r);
        const std::uint64_t e_b = e_stripes[ri].bytes();
        ColumnEpilogue repi = epi;
        repi.row_offset = r0;  // stripe-local rows -> global columns
        repi.lane_base = ri;   // serial sweep -> chunk 0 -> this rank's lane
        pruned_stripes[ri] = inflate_prune(e_stripes[ri], repi, nullptr, 0);
        e_stripes[ri] = SpMat<float>();
        auto& clock = rt.clock(r);
        clock.charge(
            sim::Comp::kSparseOther,
            rt.model().sparse_stream_time(e_b + pruned_stripes[ri].bytes()));
        clock.add_resident(pruned_stripes[ri].bytes());
        clock.sub_resident(e_b);
      });
    }
    Md = dist::DistSpMat<float>();
    Ed = dist::DistSpMat<float>();
    Ad = dist::DistSpMat<float>();

    if (masked) {
      // Merge the recomputed active columns with the frozen carry-over.
      rt.spmd([&](int r) {
        const auto ri = static_cast<std::size_t>(r);
        const Index r0 = sim::ProcGrid::split_point(n, p, r);
        SpMat<float> prev = std::move(stripes[ri]);
        const std::uint64_t pruned_b = pruned_stripes[ri].bytes();
        stripes[ri] = stitch_frozen(pruned_stripes[ri], prev,
                                    buf.skip.data(), r0, {}, {}, {}, {});
        pruned_stripes[ri] = SpMat<float>();
        auto& clock = rt.clock(r);
        const std::uint64_t b = stripes[ri].bytes();
        clock.charge(sim::Comp::kSparseOther,
                     rt.model().sparse_stream_time(b));
        clock.add_resident(b);
        clock.sub_resident(pruned_b);
      });
    } else {
      stripes = std::move(pruned_stripes);
    }

    double chaos = 0.0;
    std::uint64_t pruned = 0;
    for (int r = 0; r < p; ++r) {
      const auto ri = static_cast<std::size_t>(r);
      const Index r0 = sim::ProcGrid::split_point(n, p, r);
      chaos = std::max(chaos, chaos_of(stripes[ri], r0, buf.col_chaos));
      pruned += stripes[ri].nnz();
    }
    is.pruned_nnz = pruned;
    is.chaos = chaos;
    record_iteration(opt.telemetry, is);
    st.per_iteration.push_back(is);
    ++st.iterations;
    st.final_chaos = chaos;
    if (chaos < opt.chaos_epsilon) {
      st.converged = true;
      break;
    }
  }

  st.rank_peak_resident_bytes = rt.peak_resident_bytes();
  for (int r = 0; r < p; ++r) {
    st.modeled_seconds = std::max(st.modeled_seconds, rt.clock(r).total());
  }
  return interpret(concat_row_stripes(stripes, n), n,
                   opt.interpret_threshold, pool);
}

}  // namespace

Clustering markov_cluster(const SimilarityGraph& g, const MclOptions& opt,
                          MclStats* stats, util::ThreadPool* pool) {
  MclStats local;
  MclStats& st = stats != nullptr ? *stats : local;
  st = MclStats{};
  if (opt.distributed) return markov_cluster_distributed(g, opt, st, pool);

  SpMat<float> M = build_flow_matrix(g, opt.self_loop_scale);
  if (M.empty()) {
    st.converged = true;
    std::vector<Index> labels(g.n_vertices());
    std::iota(labels.begin(), labels.end(), 0);
    return canonicalize(labels);
  }

  const bool fused =
      opt.fused && opt.kernel == sparse::SpGemmKernel::kHash2Phase;
  const bool dropout = opt.dropout_iterations != 0;
  const double drop_eps =
      opt.dropout_epsilon > 0.0 ? opt.dropout_epsilon : opt.chaos_epsilon;
  const Index n = g.n_vertices();

  MclBuffers buf;
  buf.col_chaos.assign(n, 0.0);
  if (dropout) {
    buf.streak.assign(n, 0);
    buf.skip.assign(n, 0);
    buf.prev_skip.assign(n, 0);
  }
  buf.lanes.resize(
      std::max<std::size_t>(1, pass_threads(pool, opt.max_threads)));

  std::uint32_t cap = opt.max_column_entries;
  const ColumnEpilogue epi{opt.inflation,
                           opt.prune_threshold,
                           &cap,
                           drop_eps,
                           buf.col_chaos.data(),
                           dropout ? buf.streak.data() : nullptr,
                           /*row_offset=*/0,
                           &buf.lanes,
                           /*lane_base=*/0};
  std::uint64_t scratch_hw = 0;

  for (int it = 0; it < opt.max_iterations; ++it) {
    obs::Span span(opt.telemetry.tracer, "mcl.iteration");
    span.arg("iteration", static_cast<double>(it));

    MclIterationStats is;
    MaskCounts mc;
    if (dropout) {
      mc = build_skip_mask(M, 0, opt.dropout_iterations, buf, pool,
                           opt.max_threads);
      bump_frozen_streaks(M, 0, buf);
      if (mc.skipped == M.n_nonempty_rows()) {
        // Every column froze below the dropout epsilon: the flow is
        // settled even if the (stale) chaos gauge still reads above
        // chaos_epsilon — only reachable when dropout_epsilon exceeds it.
        st.converged = true;
        break;
      }
      is.dropout_columns = static_cast<std::uint32_t>(mc.skipped);
      is.reentered_columns = static_cast<std::uint32_t>(mc.reentered);
    }
    const bool masked = dropout && mc.skipped != 0;

    const std::uint64_t m_rows = M.n_nonempty_rows();
    const std::uint64_t m_nnz = M.nnz();
    const std::uint64_t products_before = st.spgemm.products;

    // Memory-budget feedback: a too-fat iteration tightens the column cap
    // for this and all later prunes (deterministic — byte counts are). On
    // the fused path this runs BETWEEN the symbolic and numeric phases
    // (the on_symbolic hook), fed the exact pre-epilogue shape — the same
    // numbers, hence the same decision, as the expand-then-prune sequence.
    auto tighten = [&](std::uint64_t e_rows, std::uint64_t e_nnz) {
      is.expansion_nnz = e_nnz;
      is.resident_bytes =
          dcsr_bytes(m_rows, m_nnz) + dcsr_bytes(e_rows, e_nnz);
      st.peak_resident_bytes =
          std::max(st.peak_resident_bytes, is.resident_bytes);
      if (opt.memory_budget_bytes != 0 &&
          is.resident_bytes > opt.memory_budget_bytes) {
        cap = cap == 0 ? 256 : std::max<std::uint32_t>(4, cap / 2);
        ++st.budget_tightenings;
      }
      is.column_cap = cap;
      return cap;
    };

    // Expand M ← M² ((M²)ᵀ = Mᵀ·Mᵀ, so the transposed storage multiplies
    // by itself unchanged) and prune — fused (inflate/prune/chaos inside
    // the numeric phase, one DCSR write per iteration) or as the classic
    // expand-then-sweep with the same epilogue.
    SpMat<float> P;  // the pruned update (active columns only when masked)
    if (fused) {
      obs::Span fspan(opt.telemetry.tracer, "mcl.fused_epilogue");
      sparse::FusedExpandInfo finfo;
      P = sparse::spgemm_hash2p_fused<sparse::PlusTimes<float>>(
          M, M, epi, tighten, dropout ? buf.skip.data() : nullptr, &buf.ws,
          &finfo, &st.spgemm, pool, opt.max_threads, opt.telemetry);
      fspan.arg("pre_nnz", static_cast<double>(finfo.pre_nnz));
      fspan.arg("kept_nnz", static_cast<double>(P.nnz()));
      fspan.arg("dropout_columns", static_cast<double>(is.dropout_columns));
    } else {
      SpMat<float> A_active;
      if (masked) {
        A_active = M.pruned(
            [&](Index r, Index, float) { return buf.skip[r] == 0; });
      }
      const SpMat<float>& A = masked ? A_active : M;
      SpMat<float> E = sparse::spgemm<sparse::PlusTimes<float>>(
          A, M, opt.kernel, &st.spgemm, pool, opt.max_threads, opt.telemetry);
      tighten(E.n_nonempty_rows(), E.nnz());
      P = inflate_prune(E, epi, pool, opt.max_threads);
    }
    is.expansion_products = st.spgemm.products - products_before;

    // Install the new flow matrix, donating the dying arrays back to the
    // recycled workspace (two DCSR array sets alternate between the live
    // matrix and the builder; the stitch spares cycle the same way).
    SpMat<float> Mold = std::move(M);
    if (!masked) {
      M = std::move(P);
      Mold.release_parts(buf.ws.out_row_ids, buf.ws.out_row_ptr,
                         buf.ws.out_cols, buf.ws.out_vals);
    } else {
      M = stitch_frozen(P, Mold, buf.skip.data(), 0,
                        std::move(buf.sp_row_ids), std::move(buf.sp_row_ptr),
                        std::move(buf.sp_cols), std::move(buf.sp_vals));
      P.release_parts(buf.ws.out_row_ids, buf.ws.out_row_ptr,
                      buf.ws.out_cols, buf.ws.out_vals);
      Mold.release_parts(buf.sp_row_ids, buf.sp_row_ptr, buf.sp_cols,
                         buf.sp_vals);
    }

    is.pruned_nnz = M.nnz();
    const double chaos = chaos_of(M, 0, buf.col_chaos);
    is.chaos = chaos;
    scratch_hw = std::max(scratch_hw, buf.capacity_bytes());
    is.scratch_high_water_bytes = scratch_hw;
    span.arg("chaos", chaos);
    span.arg("resident_bytes", static_cast<double>(is.resident_bytes));
    span.arg("pruned_nnz", static_cast<double>(is.pruned_nnz));
    record_iteration(opt.telemetry, is);
    st.per_iteration.push_back(is);
    ++st.iterations;
    st.final_chaos = chaos;
    if (chaos < opt.chaos_epsilon) {
      st.converged = true;
      break;
    }
  }
  return interpret(M, g.n_vertices(), opt.interpret_threshold, pool);
}

}  // namespace pastis::cluster
