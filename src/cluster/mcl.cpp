#include "cluster/mcl.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "cluster/components.hpp"
#include "dist/distmat.hpp"
#include "dist/summa.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/runtime.hpp"
#include "sparse/semiring.hpp"

namespace pastis::cluster {

namespace {

using sparse::SpMat;

/// One iteration's telemetry sample (both MCL paths): the chaos gauge plus
/// the per-iteration nnz / resident-bytes series as min-avg-max streams.
void record_iteration(const obs::Telemetry& telem,
                      const MclIterationStats& is) {
  if (telem.metrics == nullptr) return;
  auto& m = *telem.metrics;
  m.counter("mcl.iterations_total").add(1.0);
  m.gauge("mcl.chaos").set(is.chaos);
  m.gauge("mcl.column_cap").set(static_cast<double>(is.column_cap));
  m.min_avg_max("mcl.resident_bytes")
      .add(static_cast<double>(is.resident_bytes));
  m.min_avg_max("mcl.expansion_nnz")
      .add(static_cast<double>(is.expansion_nnz));
  m.min_avg_max("mcl.pruned_nnz").add(static_cast<double>(is.pruned_nnz));
}

/// Contiguous equal-row chunks for the per-column passes. Chunking is
/// scheduling only: every row's output is computed identically and
/// concatenated in row order, so the chunk count never shows in results.
std::vector<std::size_t> row_chunks(std::size_t n_rows, std::size_t parts) {
  parts = std::max<std::size_t>(1, std::min(parts, n_rows));
  std::vector<std::size_t> bounds(parts + 1);
  for (std::size_t c = 0; c <= parts; ++c) {
    bounds[c] = n_rows * c / parts;
  }
  return bounds;
}

template <typename Fn>
void run_chunks(util::ThreadPool* pool, std::size_t n_chunks, Fn&& fn) {
  if (pool == nullptr || pool->size() <= 1 || n_chunks <= 1) {
    for (std::size_t c = 0; c < n_chunks; ++c) fn(c);
  } else {
    pool->parallel_for(n_chunks, fn);
  }
}

std::size_t pass_threads(util::ThreadPool* pool, int max_threads) {
  std::size_t t = pool != nullptr ? pool->size() : 1;
  if (max_threads > 0) t = std::min(t, static_cast<std::size_t>(max_threads));
  return t;
}

/// Column-stochastic flow matrix of `g` (stored transposed: DCSR row j is
/// column j of M), with self-loops added before normalization.
SpMat<float> build_flow_matrix(const SimilarityGraph& g, double loop_scale) {
  const SpMat<float>& adj = g.adjacency();
  const std::size_t n_rows = adj.n_nonempty_rows();
  if (n_rows == 0) return SpMat<float>(g.n_vertices(), g.n_vertices());

  std::vector<Index> row_ids(adj.row_ids().begin(), adj.row_ids().end());
  std::vector<Offset> row_ptr(n_rows + 1);
  row_ptr[0] = 0;
  for (std::size_t k = 0; k < n_rows; ++k) {
    row_ptr[k + 1] =
        row_ptr[k] + (adj.row_end(k) - adj.row_begin(k)) + 1;  // + self loop
  }
  std::vector<Index> cols(row_ptr.back());
  std::vector<float> vals(row_ptr.back());
  for (std::size_t k = 0; k < n_rows; ++k) {
    const Index v = adj.row_id(k);
    float wmax = 0.0f;
    for (Offset o = adj.row_begin(k); o < adj.row_end(k); ++o) {
      wmax = std::max(wmax, adj.val(o));
    }
    const float loop =
        std::max(1e-6f, static_cast<float>(loop_scale) * wmax);
    // Merge the sorted neighbour columns with the diagonal entry.
    Offset w = row_ptr[k];
    bool loop_placed = false;
    float sum = 0.0f;
    for (Offset o = adj.row_begin(k); o < adj.row_end(k); ++o) {
      if (!loop_placed && v < adj.col(o)) {
        cols[w] = v;
        vals[w] = loop;
        sum += loop;
        ++w;
        loop_placed = true;
      }
      cols[w] = adj.col(o);
      vals[w] = adj.val(o);
      sum += adj.val(o);
      ++w;
    }
    if (!loop_placed) {
      cols[w] = v;
      vals[w] = loop;
      sum += loop;
      ++w;
    }
    for (Offset o = row_ptr[k]; o < row_ptr[k + 1]; ++o) {
      vals[o] /= sum;
    }
  }
  return SpMat<float>::from_sorted_parts(g.n_vertices(), g.n_vertices(),
                                         std::move(row_ids),
                                         std::move(row_ptr), std::move(cols),
                                         std::move(vals));
}

/// One inflate + prune + renormalize sweep over the expanded matrix.
/// Returns the new flow matrix; `chaos_out` gets the column chaos maximum.
SpMat<float> inflate_prune(const SpMat<float>& E, const MclOptions& opt,
                           std::uint32_t cap, util::ThreadPool* pool,
                           int max_threads, double* chaos_out) {
  const std::size_t n_rows = E.n_nonempty_rows();
  const std::vector<std::size_t> bounds =
      row_chunks(n_rows, pass_threads(pool, max_threads));
  const std::size_t n_chunks = bounds.empty() ? 0 : bounds.size() - 1;

  struct ChunkOut {
    std::vector<Index> cols;
    std::vector<float> vals;
    std::vector<Offset> row_nnz;  // per row of the chunk
    double chaos = 0.0;
  };
  std::vector<ChunkOut> outs(n_chunks);

  run_chunks(pool, n_chunks, [&](std::size_t c) {
    ChunkOut& out = outs[c];
    out.row_nnz.reserve(bounds[c + 1] - bounds[c]);
    std::vector<std::pair<float, Index>> top;  // (value, col) selection buf
    std::vector<double> inflated;              // pow cache, reused per row
    for (std::size_t k = bounds[c]; k < bounds[c + 1]; ++k) {
      const Offset b = E.row_begin(k);
      const Offset e = E.row_end(k);
      // Inflate and normalize the column in one fixed-order scan (pow is
      // the pass's hot operation; computed once per entry).
      inflated.clear();
      double sum = 0.0;
      for (Offset o = b; o < e; ++o) {
        inflated.push_back(
            std::pow(static_cast<double>(E.val(o)), opt.inflation));
        sum += inflated.back();
      }
      const auto inv = static_cast<float>(1.0 / sum);
      // Collect survivors of the threshold cut (the maximum entry always
      // survives, so no column ever empties).
      top.clear();
      float vmax = 0.0f;
      Index cmax = 0;
      for (Offset o = b; o < e; ++o) {
        const float v = static_cast<float>(inflated[o - b]) * inv;
        if (v > vmax) {
          vmax = v;
          cmax = E.col(o);
        }
        if (v >= opt.prune_threshold) top.push_back({v, E.col(o)});
      }
      if (top.empty()) top.push_back({vmax, cmax});
      // Top-k selection with a fixed tie-break (value desc, column asc).
      if (cap != 0 && top.size() > cap) {
        std::partial_sort(top.begin(), top.begin() + cap, top.end(),
                          [](const auto& x, const auto& y) {
                            return x.first != y.first ? x.first > y.first
                                                      : x.second < y.second;
                          });
        top.resize(cap);
        std::sort(top.begin(), top.end(), [](const auto& x, const auto& y) {
          return x.second < y.second;
        });
      }
      // Renormalize survivors and accumulate the chaos of this column.
      float kept = 0.0f;
      for (const auto& [v, col] : top) kept += v;
      float col_max = 0.0f;
      double col_sumsq = 0.0;
      for (auto& [v, col] : top) {
        v /= kept;
        col_max = std::max(col_max, v);
        col_sumsq += static_cast<double>(v) * static_cast<double>(v);
      }
      out.chaos = std::max(out.chaos,
                           static_cast<double>(col_max) - col_sumsq);
      out.row_nnz.push_back(top.size());
      for (const auto& [v, col] : top) {
        out.cols.push_back(col);
        out.vals.push_back(v);
      }
    }
  });

  // Stitch the chunks in row order (every row kept >= 1 entry, so the
  // directory carries over unchanged).
  std::vector<Index> row_ids(E.row_ids().begin(), E.row_ids().end());
  std::vector<Offset> row_ptr;
  row_ptr.reserve(n_rows + 1);
  row_ptr.push_back(0);
  Offset nnz = 0;
  for (const auto& out : outs) {
    for (const Offset rn : out.row_nnz) {
      nnz += rn;
      row_ptr.push_back(nnz);
    }
  }
  std::vector<Index> cols;
  std::vector<float> vals;
  cols.reserve(nnz);
  vals.reserve(nnz);
  double chaos = 0.0;
  for (auto& out : outs) {
    cols.insert(cols.end(), out.cols.begin(), out.cols.end());
    vals.insert(vals.end(), out.vals.begin(), out.vals.end());
    chaos = std::max(chaos, out.chaos);
  }
  *chaos_out = chaos;
  return SpMat<float>::from_sorted_parts(E.nrows(), E.ncols(),
                                         std::move(row_ids),
                                         std::move(row_ptr), std::move(cols),
                                         std::move(vals));
}

/// Logical DCSR bytes of a non-empty float matrix with `nonempty_rows`
/// rows in the directory and `nnz` stored entries — exactly
/// SpMat<float>::bytes(), so the distributed path can reproduce the
/// shared-memory path's global resident-bytes numbers (and hence its
/// budget-tightening decisions) bit-for-bit from stripe counts alone.
std::uint64_t dcsr_bytes(std::uint64_t nonempty_rows, std::uint64_t nnz) {
  if (nnz == 0) return 0;  // empty SpMat stores nothing, not even row_ptr
  return nonempty_rows * sizeof(Index) + (nonempty_rows + 1) * sizeof(Offset) +
         nnz * (sizeof(Index) + sizeof(float));
}

/// Vertically concatenates per-rank row stripes (stripe r = global rows
/// [split(n, p, r), split(n, p, r+1)), stripe-local ids) back into one
/// global matrix. Rows ascend across stripes, so the DCSR arrays
/// concatenate directly — exact values, no sort.
SpMat<float> concat_row_stripes(const std::vector<SpMat<float>>& stripes,
                                Index n) {
  std::vector<Index> row_ids;
  std::vector<Offset> row_ptr;
  std::vector<Index> cols;
  std::vector<float> vals;
  row_ptr.push_back(0);
  Index offset = 0;
  for (const auto& s : stripes) {
    for (std::size_t k = 0; k < s.n_nonempty_rows(); ++k) {
      row_ids.push_back(s.row_id(k) + offset);
      for (Offset o = s.row_begin(k); o < s.row_end(k); ++o) {
        cols.push_back(s.col(o));
        vals.push_back(s.val(o));
      }
      row_ptr.push_back(static_cast<Offset>(cols.size()));
    }
    offset += s.nrows();
  }
  return SpMat<float>::from_sorted_parts(n, n, std::move(row_ids),
                                         std::move(row_ptr), std::move(cols),
                                         std::move(vals));
}

/// Clusters = connected components of the converged flow's symmetrized
/// support (entries >= interpret_threshold).
Clustering interpret(const SpMat<float>& M, Index n, float threshold,
                     util::ThreadPool* pool) {
  std::vector<sparse::Triple<float>> support;
  M.for_each([&](Index j, Index i, float v) {
    if (i != j && v >= threshold) {
      support.push_back({i, j, v});
      support.push_back({j, i, v});
    }
  });
  const auto adj = SpMat<float>::from_triples(
      n, n, std::move(support),
      [](float& acc, const float& v) { acc = std::max(acc, v); });
  return components_of_adjacency(adj, pool);
}

/// The distributed MCL loop (HipMCL's shape over the simulated grid): the
/// transposed flow matrix lives as per-rank row stripes (every flow column
/// whole on one rank — the layout inflate/prune/chaos need), expansion
/// scatters to the 2D tiling and runs the gather-stages SUMMA (bitwise
/// equal to the local kernel — dist/summa.hpp), and the expanded matrix
/// gathers back to stripes for the rank-local column scans. All
/// result-affecting decisions (per-column prune, global budget
/// tightening) are bit-compatible with the shared-memory loop, so
/// assignments are identical for any grid side; the per-rank ledger and
/// clocks are what the grid changes.
Clustering markov_cluster_distributed(const SimilarityGraph& g,
                                      const MclOptions& opt, MclStats& st,
                                      util::ThreadPool* pool) {
  const int side = std::max(1, opt.grid_side);
  sim::SimRuntime rt(side * side, opt.machine,
                     pool != nullptr ? pool : &util::ThreadPool::global());
  const int p = rt.nprocs();
  const sim::ProcGrid& grid = rt.grid();
  st.grid_side = side;

  SpMat<float> M0 = build_flow_matrix(g, opt.self_loop_scale);
  const Index n = g.n_vertices();
  if (M0.empty()) {
    st.converged = true;
    st.rank_peak_resident_bytes.assign(static_cast<std::size_t>(p), 0);
    std::vector<Index> labels(g.n_vertices());
    std::iota(labels.begin(), labels.end(), 0);
    return canonicalize(labels);
  }

  // Initial distribution: stripe r (global rows [split(n,p,r), split(n,p,r+1))
  // of the transposed flow matrix) becomes rank r's resident state.
  std::vector<SpMat<float>> stripes(static_cast<std::size_t>(p));
  rt.spmd([&](int r) {
    const Index r0 = sim::ProcGrid::split_point(n, p, r);
    const Index r1 = sim::ProcGrid::split_point(n, p, r + 1);
    stripes[static_cast<std::size_t>(r)] = M0.extract(r0, r1, 0, n);
    const std::uint64_t b = stripes[static_cast<std::size_t>(r)].bytes();
    auto& clock = rt.clock(r);
    clock.charge(sim::Comp::kSparseOther,
                 rt.model().sparse_stream_time(b) + rt.model().p2p_time(b));
    clock.bytes_recv += b;
    clock.add_resident(b);
  });
  M0 = SpMat<float>();

  std::uint32_t cap = opt.max_column_entries;
  for (int it = 0; it < opt.max_iterations; ++it) {
    // Global (rows, nnz) of M from the stripes — the shared-memory
    // resident-bytes numbers, reproduced exactly.
    std::uint64_t m_rows = 0, m_nnz = 0;
    for (const auto& s : stripes) {
      m_rows += s.n_nonempty_rows();
      m_nnz += s.nnz();
    }

    // Expand: stripes → 2D tiles → gather-stages SUMMA → E stripes.
    auto Md = dist::scatter_row_stripes(rt, stripes, n,
                                        sim::Comp::kSparseOther, pool);
    std::vector<std::uint64_t> stripe_bytes(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      stripe_bytes[static_cast<std::size_t>(r)] =
          stripes[static_cast<std::size_t>(r)].bytes();
    }
    for (auto& s : stripes) s = SpMat<float>();

    // Ledger: the stripe is shipped out, the tile plus the gathered SUMMA
    // strips (the rank's full grid-row of A and grid-column of B) come in.
    std::vector<std::uint64_t> strip_bytes(static_cast<std::size_t>(p), 0);
    rt.spmd([&](int r) {
      const int gi = grid.row_of(r);
      const int gj = grid.col_of(r);
      std::uint64_t b = 0;
      for (int s = 0; s < side; ++s) {
        b += Md.local(grid.rank_of(gi, s)).bytes() +
             Md.local(grid.rank_of(s, gj)).bytes();
      }
      strip_bytes[static_cast<std::size_t>(r)] = b;
      auto& clock = rt.clock(r);
      clock.sub_resident(stripe_bytes[static_cast<std::size_t>(r)]);
      clock.add_resident(Md.local(r).bytes() + b);
    });

    const std::uint64_t products_before = st.spgemm.products;
    dist::SummaOptions sopt;
    sopt.kernel = opt.kernel;
    sopt.pool = pool;
    sopt.spgemm_threads = opt.max_threads;
    sopt.gather_stages = true;  // bitwise-exact float fold (see summa.hpp)
    auto Ed = dist::summa<sparse::PlusTimes<float>>(rt, Md, Md, sopt,
                                                    &st.spgemm);

    rt.spmd([&](int r) {
      rt.clock(r).add_resident(Ed.local(r).bytes());
      rt.clock(r).sub_resident(strip_bytes[static_cast<std::size_t>(r)]);
    });
    auto e_stripes = dist::gather_row_stripes(rt, Ed, sim::Comp::kSparseOther,
                                              pool);
    std::vector<std::uint64_t> md_tile_bytes(static_cast<std::size_t>(p));
    std::vector<std::uint64_t> ed_tile_bytes(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      md_tile_bytes[static_cast<std::size_t>(r)] = Md.local(r).bytes();
      ed_tile_bytes[static_cast<std::size_t>(r)] = Ed.local(r).bytes();
    }
    rt.spmd([&](int r) {
      rt.clock(r).add_resident(
          e_stripes[static_cast<std::size_t>(r)].bytes());
      rt.clock(r).sub_resident(md_tile_bytes[static_cast<std::size_t>(r)] +
                               ed_tile_bytes[static_cast<std::size_t>(r)]);
    });
    Md = dist::DistSpMat<float>();
    Ed = dist::DistSpMat<float>();

    std::uint64_t e_rows = 0, e_nnz = 0;
    for (const auto& s : e_stripes) {
      e_rows += s.n_nonempty_rows();
      e_nnz += s.nnz();
    }

    MclIterationStats is;
    is.expansion_products = st.spgemm.products - products_before;
    is.expansion_nnz = e_nnz;
    is.resident_bytes = dcsr_bytes(m_rows, m_nnz) + dcsr_bytes(e_rows, e_nnz);
    st.peak_resident_bytes =
        std::max(st.peak_resident_bytes, is.resident_bytes);
    // Global budget feedback: the SAME decision, from the SAME numbers, as
    // the shared-memory loop — this is what keeps assignments identical
    // across grid sides under a binding global budget.
    if (opt.memory_budget_bytes != 0 &&
        is.resident_bytes > opt.memory_budget_bytes) {
      cap = cap == 0 ? 256 : std::max<std::uint32_t>(4, cap / 2);
      ++st.budget_tightenings;
    }
    // Per-rank budget feedback (tile + strips during expansion, tile +
    // stripe around the gather): deterministic, but grid-side-dependent —
    // see MclOptions::rank_memory_budget_bytes.
    std::uint64_t max_rank = 0;
    for (int r = 0; r < p; ++r) {
      const auto ri = static_cast<std::size_t>(r);
      const std::uint64_t f_expand =
          md_tile_bytes[ri] + strip_bytes[ri] + ed_tile_bytes[ri];
      const std::uint64_t f_gather = md_tile_bytes[ri] + ed_tile_bytes[ri] +
                                     e_stripes[ri].bytes();
      max_rank = std::max({max_rank, f_expand, f_gather});
    }
    is.max_rank_resident_bytes = max_rank;
    if (opt.rank_memory_budget_bytes != 0 &&
        max_rank > opt.rank_memory_budget_bytes) {
      cap = cap == 0 ? 256 : std::max<std::uint32_t>(4, cap / 2);
      ++st.rank_budget_tightenings;
    }
    is.column_cap = cap;

    // Inflate + prune + chaos: rank-local column scans (the transposed
    // stripe holds every one of its flow columns whole), cap applied per
    // tile. Row-identical to the shared-memory pass.
    std::vector<double> rank_chaos(static_cast<std::size_t>(p), 0.0);
    rt.spmd([&](int r) {
      const auto ri = static_cast<std::size_t>(r);
      const std::uint64_t e_b = e_stripes[ri].bytes();
      stripes[ri] = inflate_prune(e_stripes[ri], opt, cap, nullptr, 0,
                                  &rank_chaos[ri]);
      e_stripes[ri] = SpMat<float>();
      auto& clock = rt.clock(r);
      clock.charge(sim::Comp::kSparseOther,
                   rt.model().sparse_stream_time(e_b + stripes[ri].bytes()));
      clock.add_resident(stripes[ri].bytes());
      clock.sub_resident(e_b);
    });
    double chaos = 0.0;
    std::uint64_t pruned = 0;
    for (int r = 0; r < p; ++r) {
      chaos = std::max(chaos, rank_chaos[static_cast<std::size_t>(r)]);
      pruned += stripes[static_cast<std::size_t>(r)].nnz();
    }
    is.pruned_nnz = pruned;
    is.chaos = chaos;
    record_iteration(opt.telemetry, is);
    st.per_iteration.push_back(is);
    ++st.iterations;
    st.final_chaos = chaos;
    if (chaos < opt.chaos_epsilon) {
      st.converged = true;
      break;
    }
  }

  st.rank_peak_resident_bytes = rt.peak_resident_bytes();
  for (int r = 0; r < p; ++r) {
    st.modeled_seconds = std::max(st.modeled_seconds, rt.clock(r).total());
  }
  return interpret(concat_row_stripes(stripes, n), n,
                   opt.interpret_threshold, pool);
}

}  // namespace

Clustering markov_cluster(const SimilarityGraph& g, const MclOptions& opt,
                          MclStats* stats, util::ThreadPool* pool) {
  MclStats local;
  MclStats& st = stats != nullptr ? *stats : local;
  st = MclStats{};
  if (opt.distributed) return markov_cluster_distributed(g, opt, st, pool);

  SpMat<float> M = build_flow_matrix(g, opt.self_loop_scale);
  if (M.empty()) {
    st.converged = true;
    std::vector<Index> labels(g.n_vertices());
    std::iota(labels.begin(), labels.end(), 0);
    return canonicalize(labels);
  }

  std::uint32_t cap = opt.max_column_entries;
  for (int it = 0; it < opt.max_iterations; ++it) {
    obs::Span span(opt.telemetry.tracer, "mcl.iteration");
    span.arg("iteration", static_cast<double>(it));
    // Expand: M ← M² on the configured kernel ((M²)ᵀ = Mᵀ·Mᵀ, so the
    // transposed storage multiplies by itself unchanged).
    const std::uint64_t products_before = st.spgemm.products;
    SpMat<float> E = sparse::spgemm<sparse::PlusTimes<float>>(
        M, M, opt.kernel, &st.spgemm, pool, opt.max_threads, opt.telemetry);

    MclIterationStats is;
    is.expansion_products = st.spgemm.products - products_before;
    is.expansion_nnz = E.nnz();
    is.resident_bytes = M.bytes() + E.bytes();
    st.peak_resident_bytes =
        std::max(st.peak_resident_bytes, is.resident_bytes);
    // Memory-budget feedback: a too-fat iteration tightens the column cap
    // for this and all later prunes (deterministic — byte counts are).
    if (opt.memory_budget_bytes != 0 &&
        is.resident_bytes > opt.memory_budget_bytes) {
      cap = cap == 0 ? 256 : std::max<std::uint32_t>(4, cap / 2);
      ++st.budget_tightenings;
    }
    is.column_cap = cap;

    double chaos = 0.0;
    M = inflate_prune(E, opt, cap, pool, opt.max_threads, &chaos);
    is.pruned_nnz = M.nnz();
    is.chaos = chaos;
    span.arg("chaos", chaos);
    span.arg("resident_bytes", static_cast<double>(is.resident_bytes));
    span.arg("pruned_nnz", static_cast<double>(is.pruned_nnz));
    record_iteration(opt.telemetry, is);
    st.per_iteration.push_back(is);
    ++st.iterations;
    st.final_chaos = chaos;
    if (chaos < opt.chaos_epsilon) {
      st.converged = true;
      break;
    }
  }
  return interpret(M, g.n_vertices(), opt.interpret_threshold, pool);
}

}  // namespace pastis::cluster
