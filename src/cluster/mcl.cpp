#include "cluster/mcl.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "cluster/components.hpp"
#include "sparse/semiring.hpp"

namespace pastis::cluster {

namespace {

using sparse::SpMat;

/// Contiguous equal-row chunks for the per-column passes. Chunking is
/// scheduling only: every row's output is computed identically and
/// concatenated in row order, so the chunk count never shows in results.
std::vector<std::size_t> row_chunks(std::size_t n_rows, std::size_t parts) {
  parts = std::max<std::size_t>(1, std::min(parts, n_rows));
  std::vector<std::size_t> bounds(parts + 1);
  for (std::size_t c = 0; c <= parts; ++c) {
    bounds[c] = n_rows * c / parts;
  }
  return bounds;
}

template <typename Fn>
void run_chunks(util::ThreadPool* pool, std::size_t n_chunks, Fn&& fn) {
  if (pool == nullptr || pool->size() <= 1 || n_chunks <= 1) {
    for (std::size_t c = 0; c < n_chunks; ++c) fn(c);
  } else {
    pool->parallel_for(n_chunks, fn);
  }
}

std::size_t pass_threads(util::ThreadPool* pool, int max_threads) {
  std::size_t t = pool != nullptr ? pool->size() : 1;
  if (max_threads > 0) t = std::min(t, static_cast<std::size_t>(max_threads));
  return t;
}

/// Column-stochastic flow matrix of `g` (stored transposed: DCSR row j is
/// column j of M), with self-loops added before normalization.
SpMat<float> build_flow_matrix(const SimilarityGraph& g, double loop_scale) {
  const SpMat<float>& adj = g.adjacency();
  const std::size_t n_rows = adj.n_nonempty_rows();
  if (n_rows == 0) return SpMat<float>(g.n_vertices(), g.n_vertices());

  std::vector<Index> row_ids(adj.row_ids().begin(), adj.row_ids().end());
  std::vector<Offset> row_ptr(n_rows + 1);
  row_ptr[0] = 0;
  for (std::size_t k = 0; k < n_rows; ++k) {
    row_ptr[k + 1] =
        row_ptr[k] + (adj.row_end(k) - adj.row_begin(k)) + 1;  // + self loop
  }
  std::vector<Index> cols(row_ptr.back());
  std::vector<float> vals(row_ptr.back());
  for (std::size_t k = 0; k < n_rows; ++k) {
    const Index v = adj.row_id(k);
    float wmax = 0.0f;
    for (Offset o = adj.row_begin(k); o < adj.row_end(k); ++o) {
      wmax = std::max(wmax, adj.val(o));
    }
    const float loop =
        std::max(1e-6f, static_cast<float>(loop_scale) * wmax);
    // Merge the sorted neighbour columns with the diagonal entry.
    Offset w = row_ptr[k];
    bool loop_placed = false;
    float sum = 0.0f;
    for (Offset o = adj.row_begin(k); o < adj.row_end(k); ++o) {
      if (!loop_placed && v < adj.col(o)) {
        cols[w] = v;
        vals[w] = loop;
        sum += loop;
        ++w;
        loop_placed = true;
      }
      cols[w] = adj.col(o);
      vals[w] = adj.val(o);
      sum += adj.val(o);
      ++w;
    }
    if (!loop_placed) {
      cols[w] = v;
      vals[w] = loop;
      sum += loop;
      ++w;
    }
    for (Offset o = row_ptr[k]; o < row_ptr[k + 1]; ++o) {
      vals[o] /= sum;
    }
  }
  return SpMat<float>::from_sorted_parts(g.n_vertices(), g.n_vertices(),
                                         std::move(row_ids),
                                         std::move(row_ptr), std::move(cols),
                                         std::move(vals));
}

/// One inflate + prune + renormalize sweep over the expanded matrix.
/// Returns the new flow matrix; `chaos_out` gets the column chaos maximum.
SpMat<float> inflate_prune(const SpMat<float>& E, const MclOptions& opt,
                           std::uint32_t cap, util::ThreadPool* pool,
                           int max_threads, double* chaos_out) {
  const std::size_t n_rows = E.n_nonempty_rows();
  const std::vector<std::size_t> bounds =
      row_chunks(n_rows, pass_threads(pool, max_threads));
  const std::size_t n_chunks = bounds.empty() ? 0 : bounds.size() - 1;

  struct ChunkOut {
    std::vector<Index> cols;
    std::vector<float> vals;
    std::vector<Offset> row_nnz;  // per row of the chunk
    double chaos = 0.0;
  };
  std::vector<ChunkOut> outs(n_chunks);

  run_chunks(pool, n_chunks, [&](std::size_t c) {
    ChunkOut& out = outs[c];
    out.row_nnz.reserve(bounds[c + 1] - bounds[c]);
    std::vector<std::pair<float, Index>> top;  // (value, col) selection buf
    std::vector<double> inflated;              // pow cache, reused per row
    for (std::size_t k = bounds[c]; k < bounds[c + 1]; ++k) {
      const Offset b = E.row_begin(k);
      const Offset e = E.row_end(k);
      // Inflate and normalize the column in one fixed-order scan (pow is
      // the pass's hot operation; computed once per entry).
      inflated.clear();
      double sum = 0.0;
      for (Offset o = b; o < e; ++o) {
        inflated.push_back(
            std::pow(static_cast<double>(E.val(o)), opt.inflation));
        sum += inflated.back();
      }
      const auto inv = static_cast<float>(1.0 / sum);
      // Collect survivors of the threshold cut (the maximum entry always
      // survives, so no column ever empties).
      top.clear();
      float vmax = 0.0f;
      Index cmax = 0;
      for (Offset o = b; o < e; ++o) {
        const float v = static_cast<float>(inflated[o - b]) * inv;
        if (v > vmax) {
          vmax = v;
          cmax = E.col(o);
        }
        if (v >= opt.prune_threshold) top.push_back({v, E.col(o)});
      }
      if (top.empty()) top.push_back({vmax, cmax});
      // Top-k selection with a fixed tie-break (value desc, column asc).
      if (cap != 0 && top.size() > cap) {
        std::partial_sort(top.begin(), top.begin() + cap, top.end(),
                          [](const auto& x, const auto& y) {
                            return x.first != y.first ? x.first > y.first
                                                      : x.second < y.second;
                          });
        top.resize(cap);
        std::sort(top.begin(), top.end(), [](const auto& x, const auto& y) {
          return x.second < y.second;
        });
      }
      // Renormalize survivors and accumulate the chaos of this column.
      float kept = 0.0f;
      for (const auto& [v, col] : top) kept += v;
      float col_max = 0.0f;
      double col_sumsq = 0.0;
      for (auto& [v, col] : top) {
        v /= kept;
        col_max = std::max(col_max, v);
        col_sumsq += static_cast<double>(v) * static_cast<double>(v);
      }
      out.chaos = std::max(out.chaos,
                           static_cast<double>(col_max) - col_sumsq);
      out.row_nnz.push_back(top.size());
      for (const auto& [v, col] : top) {
        out.cols.push_back(col);
        out.vals.push_back(v);
      }
    }
  });

  // Stitch the chunks in row order (every row kept >= 1 entry, so the
  // directory carries over unchanged).
  std::vector<Index> row_ids(E.row_ids().begin(), E.row_ids().end());
  std::vector<Offset> row_ptr;
  row_ptr.reserve(n_rows + 1);
  row_ptr.push_back(0);
  Offset nnz = 0;
  for (const auto& out : outs) {
    for (const Offset rn : out.row_nnz) {
      nnz += rn;
      row_ptr.push_back(nnz);
    }
  }
  std::vector<Index> cols;
  std::vector<float> vals;
  cols.reserve(nnz);
  vals.reserve(nnz);
  double chaos = 0.0;
  for (auto& out : outs) {
    cols.insert(cols.end(), out.cols.begin(), out.cols.end());
    vals.insert(vals.end(), out.vals.begin(), out.vals.end());
    chaos = std::max(chaos, out.chaos);
  }
  *chaos_out = chaos;
  return SpMat<float>::from_sorted_parts(E.nrows(), E.ncols(),
                                         std::move(row_ids),
                                         std::move(row_ptr), std::move(cols),
                                         std::move(vals));
}

/// Clusters = connected components of the converged flow's symmetrized
/// support (entries >= interpret_threshold).
Clustering interpret(const SpMat<float>& M, Index n, float threshold,
                     util::ThreadPool* pool) {
  std::vector<sparse::Triple<float>> support;
  M.for_each([&](Index j, Index i, float v) {
    if (i != j && v >= threshold) {
      support.push_back({i, j, v});
      support.push_back({j, i, v});
    }
  });
  const auto adj = SpMat<float>::from_triples(
      n, n, std::move(support),
      [](float& acc, const float& v) { acc = std::max(acc, v); });
  return components_of_adjacency(adj, pool);
}

}  // namespace

Clustering markov_cluster(const SimilarityGraph& g, const MclOptions& opt,
                          MclStats* stats, util::ThreadPool* pool) {
  MclStats local;
  MclStats& st = stats != nullptr ? *stats : local;
  st = MclStats{};

  SpMat<float> M = build_flow_matrix(g, opt.self_loop_scale);
  if (M.empty()) {
    st.converged = true;
    std::vector<Index> labels(g.n_vertices());
    std::iota(labels.begin(), labels.end(), 0);
    return canonicalize(labels);
  }

  std::uint32_t cap = opt.max_column_entries;
  for (int it = 0; it < opt.max_iterations; ++it) {
    // Expand: M ← M² on the configured kernel ((M²)ᵀ = Mᵀ·Mᵀ, so the
    // transposed storage multiplies by itself unchanged).
    const std::uint64_t products_before = st.spgemm.products;
    SpMat<float> E = sparse::spgemm<sparse::PlusTimes<float>>(
        M, M, opt.kernel, &st.spgemm, pool, opt.max_threads);

    MclIterationStats is;
    is.expansion_products = st.spgemm.products - products_before;
    is.expansion_nnz = E.nnz();
    is.resident_bytes = M.bytes() + E.bytes();
    st.peak_resident_bytes =
        std::max(st.peak_resident_bytes, is.resident_bytes);
    // Memory-budget feedback: a too-fat iteration tightens the column cap
    // for this and all later prunes (deterministic — byte counts are).
    if (opt.memory_budget_bytes != 0 &&
        is.resident_bytes > opt.memory_budget_bytes) {
      cap = cap == 0 ? 256 : std::max<std::uint32_t>(4, cap / 2);
      ++st.budget_tightenings;
    }
    is.column_cap = cap;

    double chaos = 0.0;
    M = inflate_prune(E, opt, cap, pool, opt.max_threads, &chaos);
    is.pruned_nnz = M.nnz();
    is.chaos = chaos;
    st.per_iteration.push_back(is);
    ++st.iterations;
    st.final_chaos = chaos;
    if (chaos < opt.chaos_epsilon) {
      st.converged = true;
      break;
    }
  }
  return interpret(M, g.n_vertices(), opt.interpret_threshold, pool);
}

}  // namespace pastis::cluster
