// Thread-parallel connected components over the similarity graph.
//
// Deterministic by construction for ANY pool size: the algorithm is
// Jacobi-style minimum-label propagation with full pointer-jumping
// compression (Shiloach–Vishkin flavour). Every pass reads only the
// previous iteration's label array and writes each vertex's slot exactly
// once, so thread count and chunk schedule cannot change a single bit of
// the fixpoint — the component labeling where every vertex carries its
// component's smallest vertex id. Families in a similarity graph have tiny
// diameters, so the pass count is small (pointer jumping caps it at
// O(log n) even for path graphs).
#pragma once

#include "cluster/graph.hpp"
#include "cluster/result.hpp"
#include "util/thread_pool.hpp"

namespace pastis::cluster {

/// Components of `g` as a canonical Clustering. `pool` only changes the
/// schedule (nullptr runs serial); the result is bit-identical for any
/// pool size.
[[nodiscard]] Clustering connected_components(const SimilarityGraph& g,
                                              util::ThreadPool* pool = nullptr);

/// Same propagation over a raw adjacency structure (rows = vertices,
/// columns = neighbours; values ignored). The matrix MUST be structurally
/// symmetric — each round a vertex only pulls labels from its own row, so
/// a one-directional edge would never push the minimum the other way.
/// Used by the MCL interpretation step on the symmetrized support of the
/// converged flow matrix.
[[nodiscard]] Clustering components_of_adjacency(
    const sparse::SpMat<float>& adj, util::ThreadPool* pool = nullptr);

}  // namespace pastis::cluster
