// Clustering subsystem umbrella — the paper's §III use case 2.
//
// The production run's purpose is "find the similar sequences in a given
// set by clustering them" (the Metaclust workflow); this layer turns the
// similarity-graph edge streams the search and serving paths emit into
// cluster assignments: symmetrized weighted graph assembly
// (cluster/graph.hpp), deterministic parallel connected components
// (cluster/components.hpp), and sparse Markov clustering on the two-phase
// SpGEMM kernel (cluster/mcl.hpp), all reduced to one canonical
// Clustering with a pair-counting quality scorer (cluster/result.hpp).
#pragma once

#include <string>

#include "cluster/components.hpp"
#include "cluster/graph.hpp"
#include "cluster/mcl.hpp"
#include "cluster/result.hpp"
#include "util/thread_pool.hpp"

namespace pastis::cluster {

enum class Method {
  kNone,                 // search only; no post-align clustering
  kConnectedComponents,  // transitive closure (Metaclust-style families)
  kMarkov,               // MCL flow simulation (HipMCL-style granularity)
};

[[nodiscard]] std::string to_string(Method m);

/// One clustering run's outcome and accounting, method-agnostic.
struct ClusterRun {
  Method method = Method::kNone;
  Clustering clusters;
  /// Populated for kMarkov (empty otherwise).
  MclStats mcl;
  Offset graph_edges = 0;
  std::uint64_t graph_bytes = 0;
  double wall_seconds = 0.0;
};

/// End-to-end driver: edge stream → SimilarityGraph → clusters. This is
/// the call the pipeline's post-align stage and the serving layer share;
/// results are bit-identical for any pool size.
[[nodiscard]] ClusterRun cluster_edges(
    Index n_vertices, const std::vector<io::SimilarityEdge>& edges,
    Method method, const GraphWeighting& weighting = {},
    const MclOptions& mcl_options = {}, MclStats* mcl_stats = nullptr,
    util::ThreadPool* pool = nullptr);

}  // namespace pastis::cluster
