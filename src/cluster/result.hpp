// Cluster assignments and quality scoring.
//
// Every clustering algorithm in this layer reduces to a per-vertex label
// vector; `canonicalize` renumbers labels into the one canonical form the
// whole code base compares, stores and serializes: dense cluster ids
// ordered by each cluster's smallest member. Quality against the
// generator's ground-truth families is pair-counting precision/recall/F1
// (the measure the precise-clustering line of work reports — Byma et al.).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sparse/triple.hpp"

namespace pastis::cluster {

using sparse::Index;
using sparse::Offset;

/// A clustering of vertices [0, n): `assignment[v]` is the dense cluster id
/// of vertex v, and ids are ordered by smallest member (cluster 0 contains
/// vertex 0, cluster ids increase with the first vertex not yet covered).
/// This canonical form makes clusterings directly comparable with
/// operator== across algorithms, thread counts and processes.
struct Clustering {
  std::vector<Index> assignment;
  Index n_clusters = 0;

  [[nodiscard]] std::size_t n_vertices() const { return assignment.size(); }

  /// Member count of every cluster, indexed by cluster id.
  [[nodiscard]] std::vector<Index> sizes() const;

  friend bool operator==(const Clustering&, const Clustering&) = default;
};

/// Renumbers arbitrary per-vertex labels (union-find roots, MCL attractor
/// ids, ...) into the canonical smallest-member order described above.
[[nodiscard]] Clustering canonicalize(const std::vector<Index>& labels);

/// Pair-counting quality of a clustering against ground-truth classes:
/// a pair of vertices is a true positive when it shares both a cluster and
/// a class. Vertices whose class equals `background` (singletons, excluded
/// fragments) participate in neither predicted nor truth pairs.
struct PairScore {
  std::uint64_t true_pairs = 0;       // same-class pairs (the truth set)
  std::uint64_t predicted_pairs = 0;  // same-cluster pairs among scored seqs
  std::uint64_t tp = 0;

  [[nodiscard]] double precision() const {
    return predicted_pairs == 0
               ? 1.0
               : static_cast<double>(tp) /
                     static_cast<double>(predicted_pairs);
  }
  [[nodiscard]] double recall() const {
    return true_pairs == 0
               ? 1.0
               : static_cast<double>(tp) / static_cast<double>(true_pairs);
  }
  [[nodiscard]] double f1() const {
    const double p = precision();
    const double r = recall();
    return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
};

/// Scores `c` against per-vertex ground-truth classes (e.g. the labels from
/// gen::family_labels). Counting goes through per-(cluster, class)
/// contingency sizes, never pair enumeration — O(n log n), not O(n²).
[[nodiscard]] PairScore score_against_classes(
    const Clustering& c, std::span<const std::uint32_t> classes,
    std::uint32_t background = 0xFFFFFFFFu);

}  // namespace pastis::cluster
