// Sparse Markov clustering (MCL) on the two-phase SpGEMM kernel.
//
// HipMCL [Azad et al., NAR 2018] showed the MCL process — expand (M ← M²),
// inflate (entrywise power + column renormalization), prune (per-column
// cutoff + top-k selection) — is exactly a repeated SpGEMM workload, which
// is why the paper's discovery kernel doubles as a clustering engine. The
// expansion here runs on sparse::spgemm with SpGemmKernel::kHash2Phase
// (the PR 2 symbolic/numeric parallel kernel) over the conventional (+, *)
// semiring; inflation and pruning are per-column passes that parallelize
// over the same pool.
//
// Storage convention: the column-stochastic flow matrix M is held
// TRANSPOSED, i.e. DCSR row j stores column j of M. Expansion is then
// still a self-product — (M²)ᵀ = Mᵀ·Mᵀ — and every per-column kernel
// (normalize, inflate, prune, chaos) becomes a cache-friendly row scan.
//
// Determinism: expansion is bit-identical for any pool size (the hash2p
// contract); inflation/prune/chaos are Jacobi per-row passes with one
// writer per slot and fixed tie-breaks, so the full iteration — and hence
// the final clustering — is bit-identical for ANY thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/graph.hpp"
#include "cluster/result.hpp"
#include "obs/telemetry.hpp"
#include "sim/machine_model.hpp"
#include "sparse/spgemm.hpp"
#include "util/thread_pool.hpp"

namespace pastis::cluster {

struct MclOptions {
  /// Inflation exponent r (granularity knob: higher splits finer).
  double inflation = 2.0;
  int max_iterations = 64;
  /// Converged when the chaos metric — max over columns of
  /// (max entry − Σ entry²) of the stochastic column — drops below this.
  double chaos_epsilon = 1e-3;
  /// Post-inflation stochastic entries below this are cut (mcl -P flavour).
  float prune_threshold = 1e-4f;
  /// Keep at most this many entries per column after pruning, largest
  /// first (mcl -S flavour; 0 = unbounded). Bounds expansion fill-in.
  std::uint32_t max_column_entries = 64;
  /// Final-matrix entries at or above this join the attractor support
  /// whose connected components are the clusters.
  float interpret_threshold = 1e-3f;
  /// Self-loop weight added before the first normalization, as a fraction
  /// of the vertex's maximum incident edge weight (regularizes the flow;
  /// plain MCL's loop weight 1 is the special case of unit-weight graphs).
  double self_loop_scale = 1.0;
  /// Expansion kernel; the parallel two-phase kernel is the default and
  /// the serial hash/heap oracles remain as cross-checks.
  sparse::SpGemmKernel kernel = sparse::SpGemmKernel::kHash2Phase;
  /// Threads one expansion may fan out to (0 = whole pool) — scheduling
  /// only, never results.
  int max_threads = 0;
  /// Resident-bytes budget for one iteration (current + expanded matrix),
  /// compatible with PastisConfig::exec_memory_budget_bytes: when an
  /// iteration's resident bytes exceed it, the per-column entry cap is
  /// halved (floor 4) for the rest of the run. 0 = unbounded. The
  /// tightening depends only on deterministic byte counts, so results
  /// remain thread-count invariant.
  std::uint64_t memory_budget_bytes = 0;
  /// Fuse inflate + prune + chaos into the expansion's numeric phase
  /// (sparse::spgemm_hash2p_fused): each flow column is powered,
  /// renormalized, capped and chaos-accumulated while hot, and the flow
  /// matrix is written to DCSR exactly once per iteration. Only applies
  /// when `kernel == kHash2Phase` (the serial oracles stay expand-then-
  /// prune); both paths run the SAME per-column epilogue, so fused on/off
  /// is bit-identical — it is a performance knob, kept toggleable as its
  /// own oracle.
  bool fused = true;
  /// Converged-column dropout: a column whose chaos stayed below
  /// dropout_epsilon for this many consecutive iterations — and whose
  /// support columns all did too — skips recompute (its flow column is
  /// carried over frozen) until a support column's streak resets, which
  /// re-enters it the following iteration. 0 = off (the default;
  /// exact-equivalence mode). With dropout on, iterations shrink as the
  /// flow settles; results stay bit-identical across pool sizes and grid
  /// sides for a FIXED dropout setting, and epsilon-close to the
  /// no-dropout run.
  std::uint32_t dropout_iterations = 0;
  /// Per-column chaos threshold the dropout streaks compare against
  /// (0 = use chaos_epsilon).
  double dropout_epsilon = 0.0;

  // --- distributed expansion (HipMCL-style; PastisConfig::mcl.distributed) --
  /// Run the expansion through the sparse SUMMA over a simulated
  /// grid_side × grid_side process grid: the transposed flow matrix
  /// becomes a DistSpMat<float>, M·M a gather-stages SUMMA (bitwise equal
  /// to the local kernel — see dist/summa.hpp), and inflate/prune/chaos
  /// rank-local column scans over per-rank row stripes. Assignments are
  /// bit-identical to the shared-memory path for ANY grid side; what
  /// changes is the modeled per-rank memory and time.
  bool distributed = false;
  /// Side of the process grid for the distributed path (ranks = side²).
  int grid_side = 1;
  /// Per-rank resident-bytes budget of the distributed path: when any
  /// rank's modeled iteration footprint (tile + gathered strips + stripe)
  /// exceeds it, the column cap is halved exactly like the global budget.
  /// CAUTION: per-rank footprints depend on the grid side, so — unlike
  /// every other knob — a *binding* rank budget can make assignments
  /// differ across grid sides. 0 = unbounded.
  std::uint64_t rank_memory_budget_bytes = 0;
  /// Machine the distributed path charges (wire + SpGEMM + stream time).
  sim::MachineModel machine;

  /// Telemetry sinks (null = off). With metrics, every iteration records
  /// the chaos gauge and the resident-bytes / nnz min-avg-max series (and
  /// the expansion inherits SpGEMM phase instrumentation); with a tracer,
  /// each shared-path iteration is a measured "mcl.iteration" span carrying
  /// chaos / nnz / resident-bytes args. Results are unaffected —
  /// SimilaritySearch::run_and_cluster inherits PastisConfig::telemetry
  /// here like the other knobs.
  obs::Telemetry telemetry;
};

/// Per-iteration accounting (the exec-layer-compatible resident story).
struct MclIterationStats {
  std::uint64_t expansion_products = 0;  // semiring multiplies this iter
  std::uint64_t expansion_nnz = 0;       // nnz of M² before pruning
  std::uint64_t pruned_nnz = 0;          // nnz kept after inflate+prune
  std::uint64_t resident_bytes = 0;      // M + M² live simultaneously
  /// Distributed path only: the busiest rank's modeled resident bytes
  /// this iteration (tile + gathered strips / stripe footprint).
  std::uint64_t max_rank_resident_bytes = 0;
  double chaos = 0.0;
  std::uint32_t column_cap = 0;          // cap in force this iteration
  /// Columns excluded from this iteration's expansion by the converged-
  /// column dropout mask (0 when dropout is off).
  std::uint32_t dropout_columns = 0;
  /// Previously-frozen columns forced back into this iteration's expansion
  /// because a support column's streak reset (the re-entry rule).
  std::uint32_t reentered_columns = 0;
  /// Running high-water of the recycled iteration scratch (SpGEMM
  /// workspace + epilogue lanes + dropout arrays + stitch spares) — the
  /// buffer-churn gauge: flat from iteration 2 on means no per-iteration
  /// reallocation growth (asserted in tests). Shared-memory path only.
  std::uint64_t scratch_high_water_bytes = 0;
};

struct MclStats {
  int iterations = 0;
  bool converged = false;
  double final_chaos = 0.0;
  std::uint64_t peak_resident_bytes = 0;
  int budget_tightenings = 0;
  sparse::SpGemmStats spgemm;
  std::vector<MclIterationStats> per_iteration;

  // --- distributed path (empty/zero on the shared-memory path) -------------
  int grid_side = 0;  // 0 = shared-memory run
  /// Per-rank resident-bytes high-water marks from the SimRuntime ledger.
  std::vector<std::uint64_t> rank_peak_resident_bytes;
  /// Cap tightenings forced by rank_memory_budget_bytes (as opposed to the
  /// global memory_budget_bytes, counted in budget_tightenings).
  int rank_budget_tightenings = 0;
  /// Modeled seconds of the slowest rank (SUMMA + reshapes + scans).
  double modeled_seconds = 0.0;
};

/// Clusters `g` with the MCL process. Isolated vertices become singleton
/// clusters. `pool` is scheduling only; the returned Clustering is
/// bit-identical for any pool size / max_threads.
[[nodiscard]] Clustering markov_cluster(const SimilarityGraph& g,
                                        const MclOptions& opt = {},
                                        MclStats* stats = nullptr,
                                        util::ThreadPool* pool = nullptr);

}  // namespace pastis::cluster
