#include "cluster/components.hpp"

#include <algorithm>

namespace pastis::cluster {

namespace {

/// parallel_for that degrades to a serial loop without a pool. Results
/// never depend on which branch runs — every callee writes disjoint slots.
template <typename Fn>
void for_each_index(util::ThreadPool* pool, std::size_t n, Fn&& fn) {
  if (pool == nullptr || pool->size() <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  } else {
    pool->parallel_for(n, fn);
  }
}

Clustering propagate_min_labels(const sparse::SpMat<float>& adj,
                                util::ThreadPool* pool) {
  const std::size_t n = adj.nrows();
  std::vector<Index> cur(n);
  for (std::size_t v = 0; v < n; ++v) cur[v] = static_cast<Index>(v);
  if (adj.empty()) return canonicalize(cur);

  std::vector<Index> next(n);
  const std::size_t n_rows = adj.n_nonempty_rows();

  // Per-chunk change flags avoid an atomic in the hot loop; parallel_for's
  // chunking is schedule-only, so flags are written per-row-slot via a
  // plain array indexed by row (merged after the pass).
  std::vector<std::uint8_t> row_changed(n_rows);

  for (;;) {
    // Neighbour-min pass (Jacobi: reads cur, writes next once per vertex).
    std::copy(cur.begin(), cur.end(), next.begin());
    for_each_index(pool, n_rows, [&](std::size_t k) {
      const Index v = adj.row_id(k);
      Index m = cur[v];
      for (Offset o = adj.row_begin(k); o < adj.row_end(k); ++o) {
        m = std::min(m, cur[adj.col(o)]);
      }
      next[v] = m;
      row_changed[k] = m != cur[v] ? 1 : 0;
    });
    bool changed = false;
    for (const auto f : row_changed) changed = changed || f != 0;

    // Full pointer-jumping compression: every vertex chases next's parent
    // chain to its root. next[v] <= v throughout, so chains strictly
    // decrease and terminate; the chase reads the completed next array
    // only, so it parallelizes with one write per vertex.
    for_each_index(pool, n, [&](std::size_t v) {
      Index r = next[v];
      while (next[r] != r) r = next[r];
      cur[v] = r;
    });
    if (!changed) break;
  }
  return canonicalize(cur);
}

}  // namespace

Clustering connected_components(const SimilarityGraph& g,
                                util::ThreadPool* pool) {
  return propagate_min_labels(g.adjacency(), pool);
}

Clustering components_of_adjacency(const sparse::SpMat<float>& adj,
                                   util::ThreadPool* pool) {
  return propagate_min_labels(adj, pool);
}

}  // namespace pastis::cluster
