// Symmetrized, weighted similarity graph — the clustering subsystem's input.
//
// The search pipeline emits the similarity graph as canonical triples
// (io::SimilarityEdge, seq_a < seq_b); clustering needs the symmetric
// adjacency matrix of that graph. Assembly is a counting scatter straight
// into sorted DCSR arrays via SpMat::from_sorted_parts: iterating the
// canonically-sorted edges emits every vertex's below-diagonal columns
// first and its above-diagonal columns second, both ascending, so no sort
// and no dedup pass is needed (the same direct-build argument as
// SpMat::transposed).
#pragma once

#include <cstdint>
#include <vector>

#include "io/graph_io.hpp"
#include "sparse/matrix.hpp"

namespace pastis::cluster {

using sparse::Index;
using sparse::Offset;

/// Which edge attribute becomes the adjacency weight, and which edges make
/// it into the graph at all. The search already applied the Table IV
/// ANI/coverage filters; these cutoffs tighten further for clustering
/// (e.g. HipMCL-style bitscore floors) without re-running the search.
struct GraphWeighting {
  enum class Weight { kUnit, kAni, kCoverage, kScore };
  Weight weight = Weight::kAni;
  float min_ani = 0.0f;
  float min_cov = 0.0f;
  std::int32_t min_score = 0;
};

[[nodiscard]] std::string to_string(GraphWeighting::Weight w);

class SimilarityGraph {
 public:
  SimilarityGraph() = default;

  /// Builds the symmetric adjacency of `edges` over vertices [0, n).
  /// Accepts any edge order and duplicate pairs (parallel producers may
  /// emit both); duplicates keep the maximum weight. Self-pairs and edges
  /// failing the cutoffs (or with non-positive weight) are dropped.
  [[nodiscard]] static SimilarityGraph from_edges(
      Index n_vertices, const std::vector<io::SimilarityEdge>& edges,
      const GraphWeighting& weighting = {});

  [[nodiscard]] Index n_vertices() const { return n_vertices_; }
  /// Undirected edge count (adjacency nonzeros / 2).
  [[nodiscard]] Offset n_edges() const { return adj_.nnz() / 2; }
  [[nodiscard]] const sparse::SpMat<float>& adjacency() const { return adj_; }
  [[nodiscard]] std::uint64_t bytes() const { return adj_.bytes(); }

 private:
  Index n_vertices_ = 0;
  sparse::SpMat<float> adj_;  // symmetric, zero diagonal
};

}  // namespace pastis::cluster
