#include "cluster/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace pastis::cluster {

std::string to_string(GraphWeighting::Weight w) {
  switch (w) {
    case GraphWeighting::Weight::kUnit: return "unit";
    case GraphWeighting::Weight::kAni: return "ani";
    case GraphWeighting::Weight::kCoverage: return "coverage";
    case GraphWeighting::Weight::kScore: return "score";
  }
  return "?";
}

namespace {

float weight_of(const io::SimilarityEdge& e, GraphWeighting::Weight w) {
  switch (w) {
    case GraphWeighting::Weight::kUnit: return 1.0f;
    case GraphWeighting::Weight::kAni: return e.ani;
    case GraphWeighting::Weight::kCoverage: return e.cov;
    case GraphWeighting::Weight::kScore:
      return static_cast<float>(e.score);
  }
  return 0.0f;
}

}  // namespace

SimilarityGraph SimilarityGraph::from_edges(
    Index n_vertices, const std::vector<io::SimilarityEdge>& edges,
    const GraphWeighting& weighting) {
  SimilarityGraph g;
  g.n_vertices_ = n_vertices;

  // Surviving edges in canonical (lo, hi) orientation and order.
  struct E {
    Index a, b;
    float w;
  };
  std::vector<E> kept;
  kept.reserve(edges.size());
  for (const auto& e : edges) {
    if (e.seq_a == e.seq_b) continue;
    if (e.ani < weighting.min_ani || e.cov < weighting.min_cov ||
        e.score < weighting.min_score) {
      continue;
    }
    const float w = weight_of(e, weighting.weight);
    if (!(w > 0.0f)) continue;  // MCL needs positive mass; drop NaN too
    const Index a = std::min(e.seq_a, e.seq_b);
    const Index b = std::max(e.seq_a, e.seq_b);
    if (b >= n_vertices) {
      throw std::out_of_range("SimilarityGraph: edge vertex >= n_vertices");
    }
    kept.push_back({a, b, w});
  }
  std::sort(kept.begin(), kept.end(), [](const E& x, const E& y) {
    return x.a != y.a ? x.a < y.a : x.b < y.b;
  });
  // Duplicate pairs keep the maximum weight.
  std::size_t wpos = 0;
  for (std::size_t r = 0; r < kept.size(); ++r) {
    if (wpos > 0 && kept[r].a == kept[wpos - 1].a &&
        kept[r].b == kept[wpos - 1].b) {
      kept[wpos - 1].w = std::max(kept[wpos - 1].w, kept[r].w);
    } else {
      kept[wpos++] = kept[r];
    }
  }
  kept.resize(wpos);
  if (kept.empty()) {
    g.adj_ = sparse::SpMat<float>(n_vertices, n_vertices);
    return g;
  }

  // Counting pass: symmetric degree of every vertex.
  std::vector<Offset> degree(n_vertices, 0);
  for (const auto& e : kept) {
    ++degree[e.a];
    ++degree[e.b];
  }
  std::vector<Index> row_ids;
  std::vector<Offset> row_ptr;
  // Slot of each vertex in the compressed directory (nonempty rows only).
  std::vector<Index> slot(n_vertices, 0);
  Offset nnz = 0;
  for (Index v = 0; v < n_vertices; ++v) {
    if (degree[v] == 0) continue;
    slot[v] = static_cast<Index>(row_ids.size());
    row_ids.push_back(v);
    row_ptr.push_back(nnz);
    nnz += degree[v];
  }
  row_ptr.push_back(nnz);

  // Scatter pass. Iterating kept edges in canonical order appends, for any
  // row v, first the partners of edges (a, v) with a < v (ascending a, the
  // outer sort key) and then the partners of edges (v, b) with b > v
  // (ascending b, the inner key) — i.e. columns arrive sorted.
  std::vector<Offset> cursor(row_ptr.begin(), row_ptr.end() - 1);
  std::vector<Index> cols(nnz);
  std::vector<float> vals(nnz);
  for (const auto& e : kept) {
    // Lower-triangle entries (row = the larger endpoint) first: their
    // columns are the ascending a's.
    const Offset at_b = cursor[slot[e.b]]++;
    cols[at_b] = e.a;
    vals[at_b] = e.w;
  }
  for (const auto& e : kept) {
    const Offset at_a = cursor[slot[e.a]]++;
    cols[at_a] = e.b;
    vals[at_a] = e.w;
  }
  g.adj_ = sparse::SpMat<float>::from_sorted_parts(
      n_vertices, n_vertices, std::move(row_ids), std::move(row_ptr),
      std::move(cols), std::move(vals));
  return g;
}

}  // namespace pastis::cluster
