#include "cluster/result.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace pastis::cluster {

std::vector<Index> Clustering::sizes() const {
  std::vector<Index> out(n_clusters, 0);
  for (const Index c : assignment) ++out[c];
  return out;
}

Clustering canonicalize(const std::vector<Index>& labels) {
  Clustering out;
  out.assignment.resize(labels.size());
  // First-occurrence order over ascending vertex ids IS smallest-member
  // order: a cluster's id is assigned the first time its lowest vertex is
  // seen.
  constexpr Index kUnset = static_cast<Index>(-1);
  std::vector<Index> remap;
  std::map<Index, Index> sparse_remap;
  Index max_label = 0;
  for (const Index l : labels) max_label = std::max(max_label, l);
  // Flat remap when labels are vertex-id-like (our algorithms emit roots
  // < n); arbitrary sparse labels fall back to the ordered map.
  if (!labels.empty() &&
      static_cast<std::size_t>(max_label) < 2 * labels.size() + 1024) {
    remap.assign(static_cast<std::size_t>(max_label) + 1, kUnset);
  }
  Index next = 0;
  for (std::size_t v = 0; v < labels.size(); ++v) {
    const Index l = labels[v];
    Index* slot;
    if (!remap.empty() && l < remap.size()) {
      slot = &remap[l];
    } else {
      slot = &sparse_remap.try_emplace(l, kUnset).first->second;
    }
    if (*slot == kUnset) *slot = next++;
    out.assignment[v] = *slot;
  }
  out.n_clusters = next;
  return out;
}

PairScore score_against_classes(const Clustering& c,
                                std::span<const std::uint32_t> classes,
                                std::uint32_t background) {
  if (c.assignment.size() != classes.size()) {
    throw std::invalid_argument(
        "score_against_classes: clustering and class labels disagree on n");
  }
  auto choose2 = [](std::uint64_t n) { return n * (n - 1) / 2; };

  std::map<std::uint32_t, std::uint64_t> class_sizes;
  std::vector<std::uint64_t> cluster_sizes(c.n_clusters, 0);
  std::map<std::pair<Index, std::uint32_t>, std::uint64_t> contingency;
  for (std::size_t v = 0; v < classes.size(); ++v) {
    if (classes[v] == background) continue;
    ++class_sizes[classes[v]];
    ++cluster_sizes[c.assignment[v]];
    ++contingency[{c.assignment[v], classes[v]}];
  }

  PairScore s;
  for (const auto& [cls, n] : class_sizes) s.true_pairs += choose2(n);
  for (const auto n : cluster_sizes) s.predicted_pairs += choose2(n);
  for (const auto& [key, n] : contingency) s.tp += choose2(n);
  return s;
}

}  // namespace pastis::cluster
