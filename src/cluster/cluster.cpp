#include "cluster/cluster.hpp"

#include <numeric>
#include <stdexcept>

#include "util/timer.hpp"

namespace pastis::cluster {

std::string to_string(Method m) {
  switch (m) {
    case Method::kNone: return "none";
    case Method::kConnectedComponents: return "connected-components";
    case Method::kMarkov: return "markov";
  }
  return "?";
}

ClusterRun cluster_edges(Index n_vertices,
                         const std::vector<io::SimilarityEdge>& edges,
                         Method method, const GraphWeighting& weighting,
                         const MclOptions& mcl_options, MclStats* mcl_stats,
                         util::ThreadPool* pool) {
  util::Timer wall;
  ClusterRun run;
  run.method = method;
  if (method == Method::kNone) {
    // Degenerate: every vertex its own cluster (callers normally gate on
    // the method before paying for graph assembly).
    std::vector<Index> labels(n_vertices);
    std::iota(labels.begin(), labels.end(), 0);
    run.clusters = canonicalize(labels);
    run.wall_seconds = wall.seconds();
    return run;
  }

  const SimilarityGraph g =
      SimilarityGraph::from_edges(n_vertices, edges, weighting);
  run.graph_edges = g.n_edges();
  run.graph_bytes = g.bytes();
  switch (method) {
    case Method::kConnectedComponents:
      run.clusters = connected_components(g, pool);
      break;
    case Method::kMarkov:
      run.clusters = markov_cluster(g, mcl_options, &run.mcl, pool);
      break;
    case Method::kNone:
      break;  // handled above
  }
  if (mcl_stats != nullptr) *mcl_stats = run.mcl;
  run.wall_seconds = wall.seconds();
  return run;
}

}  // namespace pastis::cluster
