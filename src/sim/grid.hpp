// The √p × √p process grid of CombBLAS (paper §V-A: "It uses a square
// process grid with the requirement of number of processes to be a perfect
// square number"). One simulated rank corresponds to one Summit node in the
// paper's runs (1 MPI task per node, Table IV).
#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sparse/triple.hpp"

namespace pastis::sim {

using sparse::Index;

class ProcGrid {
 public:
  /// `p` must be a perfect square.
  explicit ProcGrid(int p) : p_(p) {
    const int side = static_cast<int>(std::lround(std::sqrt(double(p))));
    if (p <= 0 || side * side != p) {
      throw std::invalid_argument(
          "ProcGrid: number of processes must be a positive perfect square");
    }
    side_ = side;
  }

  [[nodiscard]] int size() const { return p_; }
  [[nodiscard]] int side() const { return side_; }

  [[nodiscard]] int row_of(int rank) const { return rank / side_; }
  [[nodiscard]] int col_of(int rank) const { return rank % side_; }
  [[nodiscard]] int rank_of(int grid_row, int grid_col) const {
    return grid_row * side_ + grid_col;
  }

  /// Boundary of dimension `n` split into `parts` nearly-equal ranges:
  /// range q is [split(n, parts, q), split(n, parts, q+1)).
  [[nodiscard]] static Index split_point(Index n, int parts, int q) {
    return static_cast<Index>((static_cast<std::uint64_t>(n) *
                               static_cast<std::uint64_t>(q)) /
                              static_cast<std::uint64_t>(parts));
  }

  /// Which of `parts` ranges owns index `i` of a dimension of size `n`.
  [[nodiscard]] static int part_of(Index i, Index n, int parts) {
    // Inverse of split_point: find q with split(q) <= i < split(q+1).
    int q = static_cast<int>((static_cast<std::uint64_t>(i) *
                              static_cast<std::uint64_t>(parts)) /
                             static_cast<std::uint64_t>(n));
    while (split_point(n, parts, q) > i) --q;
    while (split_point(n, parts, q + 1) <= i) ++q;
    return q;
  }

 private:
  int p_;
  int side_;
};

}  // namespace pastis::sim
