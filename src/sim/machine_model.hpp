// The simulated machine: Summit, as described in §VIII of the paper.
//
// Every paper-facing second in this reproduction is *modeled*: measured work
// counters (semiring products, DP cells, bytes moved) are converted to time
// using the rates below. The constants are calibrated against published
// numbers:
//   * node: 2×22-core POWER9 (42 cores usable, 2 reserved for system),
//     6 V100 GPUs, 512 GB DRAM;
//   * alignment: the production run peaked at 176.3 TCUPS over 3364 nodes
//     (Table IV) → 176.3e12 / 3364 / 6 ≈ 8.7 GCUPS sustained per GPU;
//   * network: dual-rail EDR InfiniBand, fat tree — α = 3 µs, per-rail
//     12.5 GB/s effective point-to-point bandwidth; collectives use tree
//     algorithms, the same assumption as the paper's cost formulas (§VI-A);
//   * filesystem: Alpine/GPFS, 2.5 TB/s aggregate, a few GB/s per node;
//   * SpGEMM: hash-kernel useful-product rates in the tens of millions per
//     core per second [Nagasaka et al. ICPP'18 on KNL/multicore].
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace pastis::sim {

struct MachineModel {
  // --- node ---------------------------------------------------------------
  int cores_per_node = 42;
  int gpus_per_node = 6;
  double node_memory_bytes = 512e9;

  /// Hash-SpGEMM useful semiring products per core-second. The products of
  /// the overlap computation carry 24-byte CommonKmers payloads through a
  /// hash accumulator — far costlier than numeric FLOPs. Back-computed from
  /// the paper's own Table IV (2.06 h of SpGEMM over ~10^15 semiring
  /// products on 3364 nodes gives 1-2e6 per core-second), which also lands
  /// the align:sparse ratio in the reported "no more than 2:1" regime.
  double spgemm_products_per_core_s = 1.5e6;
  /// Streaming rate for the remaining sparse work (transpose, stripe
  /// splits, merges, pruning) in bytes per node-second.
  double sparse_stream_Bps = 2.0e10;
  /// Per local-SpGEMM-call fixed cost (hash table setup, symbolic pass
  /// startup) — one of the terms that makes many small blocked multiplies
  /// slower than one big one (Fig. 5's multiplication growth).
  double spgemm_call_overhead_s = 1.0e-3;

  // --- accelerator (ADEPT model) -------------------------------------------
  /// Sustained cell updates per second per GPU (see header comment).
  double cups_per_gpu = 8.7e9;
  /// Host-side packing cost per pair (driver threads).
  double pack_s_per_pair = 2.0e-7;
  /// Kernel launch + transfer latency per batch launch.
  double kernel_launch_s = 1.5e-4;
  /// Alignments per kernel launch (ADEPT batches by GPU memory).
  std::uint64_t pairs_per_launch = 50000;
  /// Vectorised Smith-Waterman on the CPU (striped SSE/AVX — the path
  /// MMseqs2/DIAMOND use; §IV notes Summit's POWER9 lacks these units).
  /// Sustained, including prefilter cache effects.
  double cpu_simd_cups_per_core = 3.0e8;

  // --- network --------------------------------------------------------------
  double alpha_s = 3.0e-6;           // message startup
  double beta_s_per_byte = 8.0e-11;  // 12.5 GB/s effective per direction
  // --- filesystem -----------------------------------------------------------
  double fs_aggregate_Bps = 2.5e12;
  double fs_per_node_Bps = 2.0e9;
  double io_startup_s = 5.0e-3;

  /// Fractional products-time penalty per extra stripe reuse in blocked
  /// SUMMA — the paper's "split sparse computations": forming C in br x bc
  /// blocks re-broadcasts and re-traverses each input stripe, and the
  /// smaller per-call multiplies lose hash/cache efficiency. Discovery
  /// compute is dilated by 1 + frac * ((br+bc)/2 - 1); 0.065 reproduces
  /// Fig. 5's 40-45% multiplication growth at ~40 blocks.
  double spgemm_split_overhead_frac = 0.065;

  [[nodiscard]] double split_dilation(int block_rows, int block_cols) const {
    const double reuse = (block_rows + block_cols) / 2.0;
    return 1.0 + spgemm_split_overhead_frac * (reuse - 1.0);
  }

  // --- pre-blocking contention ----------------------------------------------
  /// When SpGEMM for block b+1 overlaps alignment of block b, the CPU is
  /// shared: ADEPT's driver threads (one per GPU) keep their cores, the
  /// sparse work gets the rest. Alignment dilates slightly from host-side
  /// contention (paper Table I: align ×1.08-1.15, sparse ×1.14-1.57 — the
  /// sparse side additionally loses to the split-block overheads above).
  double preblock_align_dilation = 1.12;
  [[nodiscard]] double preblock_sparse_dilation() const {
    return static_cast<double>(cores_per_node) /
           static_cast<double>(cores_per_node - gpus_per_node);
  }

  // --- workload homothety ------------------------------------------------------

  /// A Summit scaled to a validation dataset that is `k_bytes` times
  /// smaller in sequences/matrix bytes and `k_work` times smaller in
  /// alignment/SpGEMM work (work grows quadratically with sequences, so
  /// k_work = k_bytes^2 for a paper experiment scaled down by k_bytes).
  /// Compute rates are divided by k_work and per-byte costs multiplied by
  /// k_bytes, so every modeled term lands at the *paper's* per-node seconds
  /// with the paper's relative weights; fixed latencies (alpha, call
  /// setup, kernel launch) keep their true Summit values and therefore
  /// their true (negligible) share, exactly as on the real machine.
  [[nodiscard]] static MachineModel summit_scaled(double k_work,
                                                  double k_bytes) {
    MachineModel m;
    m.spgemm_products_per_core_s /= k_work;
    m.cups_per_gpu /= k_work;
    m.cpu_simd_cups_per_core /= k_work;
    m.pack_s_per_pair *= k_work;
    m.pairs_per_launch = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               static_cast<double>(m.pairs_per_launch) / k_work));
    m.beta_s_per_byte *= k_bytes;
    m.sparse_stream_Bps /= k_bytes;
    m.fs_aggregate_Bps /= k_bytes;
    m.fs_per_node_Bps /= k_bytes;
    return m;
  }

  // --- derived time formulas -------------------------------------------------

  /// Tree broadcast of `bytes` within a team of `team` ranks (paper §VI-A
  /// charges log √p tree depth per stage; same formula here).
  [[nodiscard]] double bcast_time(std::uint64_t bytes, int team) const {
    if (team <= 1) return 0.0;
    const double depth = std::ceil(std::log2(static_cast<double>(team)));
    return (alpha_s + static_cast<double>(bytes) * beta_s_per_byte) * depth;
  }

  /// Point-to-point transfer.
  [[nodiscard]] double p2p_time(std::uint64_t bytes) const {
    return alpha_s + static_cast<double>(bytes) * beta_s_per_byte;
  }

  /// One local SpGEMM call that performed `products` semiring multiplies
  /// using all CPU cores of the node (the non-overlapped configuration).
  [[nodiscard]] double spgemm_time(std::uint64_t products) const {
    return spgemm_call_overhead_s +
           static_cast<double>(products) /
               (spgemm_products_per_core_s * cores_per_node);
  }

  /// Streaming sparse work over `bytes` of matrix data.
  [[nodiscard]] double sparse_stream_time(std::uint64_t bytes) const {
    return static_cast<double>(bytes) / sparse_stream_Bps;
  }

  /// Device time for an alignment batch: `max_device_cells` on the busiest
  /// GPU, `launches` kernel launches, `pairs` packed by the host drivers.
  [[nodiscard]] double align_time(std::uint64_t max_device_cells,
                                  std::uint64_t launches,
                                  std::uint64_t pairs) const {
    return static_cast<double>(max_device_cells) / cups_per_gpu +
           static_cast<double>(launches) * kernel_launch_s +
           static_cast<double>(pairs) * pack_s_per_pair;
  }

  /// Parallel file IO of `bytes` spread over `nodes` nodes.
  [[nodiscard]] double io_time(std::uint64_t bytes, int nodes) const {
    const double bw = std::min(fs_aggregate_Bps,
                               fs_per_node_Bps * static_cast<double>(nodes));
    return io_startup_s + static_cast<double>(bytes) / bw;
  }
};

}  // namespace pastis::sim
