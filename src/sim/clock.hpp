// Per-rank accounting: modeled seconds by component plus work counters.
// These are exactly the quantities §VII says were measured on Summit
// (component timers; alignments/s over the whole runtime; CUPS over the
// alignment kernel time).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace pastis::sim {

/// Runtime components reported by the paper's tables/figures.
enum class Comp : int {
  kSpGemm = 0,     // "SpGEMM" / "sparse (mult)"
  kSparseOther,    // transpose, stripe splits, merges, pruning
  kAlign,          // device kernel + launches + host packing
  kSeqWait,        // waiting on sequence communication ("cwait", Table II)
  kIO,             // parallel FASTA read + graph write
  kMigrate,        // online shard re-placement copies (serving tier)
  kOther,          // everything else (graph assembly, bookkeeping)
  kCount,
};

[[nodiscard]] constexpr std::string_view comp_name(Comp c) {
  switch (c) {
    case Comp::kSpGemm:
      return "spgemm";
    case Comp::kSparseOther:
      return "sparse_other";
    case Comp::kAlign:
      return "align";
    case Comp::kSeqWait:
      return "cwait";
    case Comp::kIO:
      return "io";
    case Comp::kMigrate:
      return "migrate";
    case Comp::kOther:
      return "other";
    default:
      return "?";
  }
}

struct RankClock {
  std::array<double, static_cast<std::size_t>(Comp::kCount)> seconds{};

  // Work counters.
  std::uint64_t spgemm_products = 0;
  std::uint64_t overlap_nnz = 0;       // candidate pairs discovered locally
  std::uint64_t pairs_aligned = 0;
  std::uint64_t align_cells = 0;       // DP cells (CUPS numerator)
  double align_kernel_seconds = 0.0;   // CUPS denominator
  std::uint64_t similar_pairs = 0;     // edges passing ANI+coverage
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_recv = 0;
  std::uint64_t io_bytes = 0;
  std::uint64_t peak_memory_bytes = 0;
  /// Modeled bytes currently resident in this rank's memory (shard stripes,
  /// matrix tiles, workspaces). The distributed serving and clustering
  /// paths keep this ledger so per-rank budgets can be *enforced*, not just
  /// reported; `peak_memory_bytes` records the high-water mark.
  std::uint64_t resident_bytes = 0;

  void charge(Comp c, double s) {
    seconds[static_cast<std::size_t>(c)] += s;
  }

  /// Resident-bytes ledger: what this rank holds right now. The peak is
  /// folded into peak_memory_bytes automatically.
  void add_resident(std::uint64_t b) {
    resident_bytes += b;
    if (resident_bytes > peak_memory_bytes) peak_memory_bytes = resident_bytes;
  }
  void sub_resident(std::uint64_t b) {
    resident_bytes = resident_bytes > b ? resident_bytes - b : 0;
  }
  [[nodiscard]] double get(Comp c) const {
    return seconds[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] double total() const {
    double t = 0.0;
    for (double s : seconds) t += s;
    return t;
  }

  void merge(const RankClock& o) {
    for (std::size_t i = 0; i < seconds.size(); ++i) seconds[i] += o.seconds[i];
    spgemm_products += o.spgemm_products;
    overlap_nnz += o.overlap_nnz;
    pairs_aligned += o.pairs_aligned;
    align_cells += o.align_cells;
    align_kernel_seconds += o.align_kernel_seconds;
    similar_pairs += o.similar_pairs;
    bytes_sent += o.bytes_sent;
    bytes_recv += o.bytes_recv;
    io_bytes += o.io_bytes;
    resident_bytes += o.resident_bytes;
    // The merged high-water mark must cover both inputs' peaks AND the
    // combined current residency (a frame's net add lands on top of what
    // this clock already holds).
    peak_memory_bytes = peak_memory_bytes > o.peak_memory_bytes
                            ? peak_memory_bytes
                            : o.peak_memory_bytes;
    if (resident_bytes > peak_memory_bytes) peak_memory_bytes = resident_bytes;
  }
};

/// Modeled seconds of the sparse components (SpGEMM + the other sparse
/// work) — the discovery side of the §VI-C discovery/alignment overlap.
/// Used to attribute a stage-slot clock frame's charges to the timeline.
[[nodiscard]] inline double sparse_seconds(const RankClock& c) {
  return c.get(Comp::kSpGemm) + c.get(Comp::kSparseOther);
}

}  // namespace pastis::sim
