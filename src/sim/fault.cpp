#include "sim/fault.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <stdexcept>

namespace pastis::sim {

namespace {

[[noreturn]] void bad(const std::string& what, const std::string& text) {
  throw std::invalid_argument("FaultPlan: " + what + " in \"" + text + "\"");
}

std::string trimmed(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

}  // namespace

int FaultSnapshot::next_alive(int rank) const {
  const int p = static_cast<int>(dead.size());
  for (int i = 0; i < p; ++i) {
    const int r = (rank + i) % p;
    if (dead[static_cast<std::size_t>(r)] == 0) return r;
  }
  return -1;
}

void FaultPlan::validate() const {
  for (const auto& e : events) {
    if (e.rank < 0) {
      throw std::invalid_argument("FaultPlan: event rank must be >= 0");
    }
    if (e.kind == FaultKind::kSlowdown && e.factor < 1.0) {
      throw std::invalid_argument(
          "FaultPlan: slowdown factor must be >= 1");
    }
    if (e.kind != FaultKind::kSlowdown && e.factor != 1.0) {
      throw std::invalid_argument(
          "FaultPlan: only slowdown events carry a factor");
    }
  }
}

FaultSnapshot FaultPlan::snapshot_at_batch(std::uint64_t batch,
                                           int nranks) const {
  FaultSnapshot s;
  const auto n = static_cast<std::size_t>(nranks);
  s.dead.assign(n, 0);
  s.slowdown.assign(n, 1.0);
  s.drop.assign(n, 0);
  for (const auto& e : events) {
    if (e.rank < 0 || e.rank >= nranks || e.time_triggered()) continue;
    if (batch < e.at_batch) continue;
    const bool active =
        e.for_batches == 0 || batch < e.at_batch + e.for_batches;
    const auto r = static_cast<std::size_t>(e.rank);
    switch (e.kind) {
      case FaultKind::kDeath:
        s.dead[r] = 1;  // permanent regardless of for_batches
        break;
      case FaultKind::kSlowdown:
        if (active) s.slowdown[r] = std::max(s.slowdown[r], e.factor);
        break;
      case FaultKind::kDropMessages:
        if (active) s.drop[r] = 1;
        break;
    }
  }
  return s;
}

std::vector<FaultEvent> FaultPlan::deaths_surfacing_at(
    std::uint64_t batch, std::uint64_t first_batch, int nranks) const {
  std::vector<FaultEvent> out;
  for (const auto& e : events) {
    if (e.kind != FaultKind::kDeath || e.time_triggered()) continue;
    if (e.rank < 0 || e.rank >= nranks) continue;
    if (std::max(e.at_batch, first_batch) == batch) out.push_back(e);
  }
  return out;
}

FaultPlan FaultPlan::parse(const std::string& text) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t semi = text.find(';', pos);
    const std::string tok = trimmed(
        text.substr(pos, semi == std::string::npos ? semi : semi - pos));
    pos = semi == std::string::npos ? text.size() + 1 : semi + 1;
    if (tok.empty()) continue;

    FaultEvent e;
    const std::size_t at = tok.find('@');
    const std::size_t colon = tok.find(':', at == std::string::npos ? 0 : at);
    if (at == std::string::npos || colon == std::string::npos) {
      bad("expected kind@trigger:rank", tok);
    }
    const std::string kind = tok.substr(0, at);
    if (kind == "kill") {
      e.kind = FaultKind::kDeath;
    } else if (kind == "slow") {
      e.kind = FaultKind::kSlowdown;
    } else if (kind == "drop") {
      e.kind = FaultKind::kDropMessages;
    } else {
      bad("unknown fault kind '" + kind + "'", tok);
    }

    const std::string trig = tok.substr(at + 1, colon - at - 1);
    if (trig.size() < 2 || (trig[0] != 'b' && trig[0] != 't')) {
      bad("trigger must be b<batch> or t<seconds>", tok);
    }
    try {
      if (trig[0] == 'b') {
        e.at_batch = std::stoull(trig.substr(1));
      } else {
        e.at_time_s = std::stod(trig.substr(1));
        if (e.at_time_s < 0.0) bad("time trigger must be >= 0", tok);
      }
    } catch (const std::invalid_argument&) {
      bad("unparseable trigger value", tok);
    }

    std::string rest = tok.substr(colon + 1);
    if (rest.empty() || rest[0] != 'r') bad("rank must be r<id>", tok);
    rest = rest.substr(1);
    // r<digits> [x<factor>] [+<batches>]
    std::size_t i = 0;
    while (i < rest.size() &&
           std::isdigit(static_cast<unsigned char>(rest[i])) != 0) {
      ++i;
    }
    if (i == 0) bad("rank must be r<id>", tok);
    e.rank = std::stoi(rest.substr(0, i));
    rest = rest.substr(i);
    if (!rest.empty() && rest[0] == 'x') {
      const std::size_t plus = rest.find('+');
      const std::string f =
          rest.substr(1, plus == std::string::npos ? plus : plus - 1);
      try {
        e.factor = std::stod(f);
      } catch (const std::invalid_argument&) {
        bad("unparseable slowdown factor", tok);
      }
      rest = plus == std::string::npos ? std::string() : rest.substr(plus);
    }
    if (!rest.empty() && rest[0] == '+') {
      try {
        e.for_batches = std::stoull(rest.substr(1));
      } catch (const std::invalid_argument&) {
        bad("unparseable duration", tok);
      }
      rest.clear();
    }
    if (!rest.empty()) bad("trailing garbage '" + rest + "'", tok);
    plan.events.push_back(e);
  }
  plan.validate();
  return plan;
}

std::string FaultPlan::to_string() const {
  std::string out;
  char buf[64];
  for (const auto& e : events) {
    if (!out.empty()) out += ';';
    out += fault_kind_name(e.kind);
    out += '@';
    if (e.time_triggered()) {
      std::snprintf(buf, sizeof(buf), "t%g", e.at_time_s);
      out += buf;
    } else {
      out += 'b' + std::to_string(e.at_batch);
    }
    out += ":r" + std::to_string(e.rank);
    if (e.kind == FaultKind::kSlowdown) {
      std::snprintf(buf, sizeof(buf), "x%g", e.factor);
      out += buf;
    }
    if (e.for_batches != 0) out += '+' + std::to_string(e.for_batches);
  }
  return out;
}

}  // namespace pastis::sim
