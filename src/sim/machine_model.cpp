#include "sim/machine_model.hpp"

namespace pastis::sim {

// Model constants are defined inline in the header; this TU anchors the
// static library.

}  // namespace pastis::sim
