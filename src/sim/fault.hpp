// Deterministic rank-fault injection for the simulated runtime.
//
// The paper's production runs hold thousands of Summit nodes for hours — a
// regime where rank loss is the norm, not the exception. This module
// describes *planned* faults: a FaultPlan is a list of events that kill a
// rank, slow it down, or drop its outbound messages, each firing at a
// specific serving-stream batch ordinal or at a specific modeled time.
// Faults are data, not randomness: for a fixed plan the outcome of every
// consumer (serving failover, degraded masks, modeled makespans) is
// bit-identical regardless of host thread count, and the empty plan is
// bit-identical to a build without the fault layer at all.
//
// Two trigger kinds, two consumers:
//   * batch triggers (`at_batch`) are consumed by the streaming serving
//     path (index::QueryEngine): the fault state seen by batch b is the
//     pure function `snapshot_at_batch(b)`, so concurrently in-flight
//     batches never race on mutable fault state;
//   * modeled-time triggers (`at_time_s`) are consumed by the sequential
//     super-step paths through SimRuntime::apply_time_faults(), which
//     compares each rank's modeled clock total between super-steps.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pastis::sim {

enum class FaultKind : int {
  /// The rank stops permanently: its tasks are skipped, its clock frozen,
  /// its resident bytes released. Serving escalates straight to failover.
  kDeath = 0,
  /// Transient: the rank's modeled task seconds are dilated by `factor`
  /// while the fault is active. Serving retries through exec::RetryPolicy
  /// rather than failing over.
  kSlowdown,
  /// Transient: messages *from* this rank are dropped once and must be
  /// resent (one retry + backoff per send while active).
  kDropMessages,
};

[[nodiscard]] constexpr const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kDeath:
      return "kill";
    case FaultKind::kSlowdown:
      return "slow";
    case FaultKind::kDropMessages:
      return "drop";
  }
  return "?";
}

struct FaultEvent {
  FaultKind kind = FaultKind::kDeath;
  int rank = 0;
  /// Batch-ordinal trigger: the event is in effect from serving-stream
  /// batch `at_batch` onwards (ignored when `at_time_s` >= 0).
  std::uint64_t at_batch = 0;
  /// Modeled-time trigger: fires once the rank's modeled clock total
  /// reaches this many seconds (< 0 = batch-triggered, the default).
  double at_time_s = -1.0;
  /// kSlowdown only: the modeled-seconds dilation factor (>= 1).
  double factor = 1.0;
  /// Transient window in batches for kSlowdown / kDropMessages: active for
  /// [at_batch, at_batch + for_batches). 0 = active forever. Deaths are
  /// always permanent.
  std::uint64_t for_batches = 0;

  [[nodiscard]] bool time_triggered() const { return at_time_s >= 0.0; }

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// The per-rank fault state in effect for one serving batch — a pure
/// function of (plan, batch ordinal), never of the schedule.
struct FaultSnapshot {
  std::vector<char> dead;        // rank -> permanently failed
  std::vector<double> slowdown;  // rank -> modeled dilation factor (>= 1)
  std::vector<char> drop;        // rank -> outbound messages dropped

  [[nodiscard]] bool any() const {
    for (const char d : dead)
      if (d) return true;
    for (const double f : slowdown)
      if (f > 1.0) return true;
    for (const char d : drop)
      if (d) return true;
    return false;
  }
  [[nodiscard]] int n_alive() const {
    int n = 0;
    for (const char d : dead) n += d ? 0 : 1;
    return n;
  }
  /// First alive rank at or cyclically after `rank` (-1 when all dead) —
  /// the deterministic successor rule batch ownership and reference-slice
  /// failover both use.
  [[nodiscard]] int next_alive(int rank) const;
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  [[nodiscard]] bool empty() const { return events.empty(); }

  /// Throws std::invalid_argument for malformed events (negative rank,
  /// slowdown factor < 1, non-slowdown events carrying a factor).
  void validate() const;

  /// Fault state in effect for serving batch `batch` on an `nranks` grid.
  /// Batch-triggered events only; time-triggered events and events naming
  /// ranks outside the grid are ignored. Pure and schedule-independent.
  [[nodiscard]] FaultSnapshot snapshot_at_batch(std::uint64_t batch,
                                                int nranks) const;

  /// Death events that become visible exactly at `batch` given that the
  /// stream being served starts at `first_batch` (deaths planned before
  /// the stream surface at its first batch). This is what failover
  /// recovery (re-placement, re-replication) is charged against — once per
  /// death, at a deterministic batch.
  [[nodiscard]] std::vector<FaultEvent> deaths_surfacing_at(
      std::uint64_t batch, std::uint64_t first_batch, int nranks) const;

  /// Plan grammar (docs/ARCHITECTURE.md "Fault plan grammar"):
  ///   plan    := event (';' event)*
  ///   event   := kind '@' trigger ':' 'r' rank [ 'x' factor ] [ '+' batches ]
  ///   kind    := 'kill' | 'slow' | 'drop'
  ///   trigger := 'b' batch-ordinal | 't' modeled-seconds
  /// e.g. "kill@b2:r3;slow@b1:r0x4+2;drop@b0:r1+3". Whitespace around
  /// tokens is ignored. Throws std::invalid_argument on malformed input.
  [[nodiscard]] static FaultPlan parse(const std::string& text);
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

}  // namespace pastis::sim
