// Simulated SPMD runtime.
//
// `p` logical ranks (one per simulated Summit node) execute rank-indexed
// lambdas; real data moves between their rank-local containers while wire
// time is charged to the MachineModel. Rank tasks run in parallel on the
// host thread pool — each task touches only its rank's slot, so the
// execution is race-free and, more importantly, *deterministic*: results
// are bit-identical regardless of host core count, which is the property
// the paper claims for PASTIS itself.
//
// Fault tolerance (sim/fault.hpp): the runtime enforces planned rank
// deaths — a dead rank's spmd task is skipped, its clock frozen
// (merge_frame ignores it), and its resident bytes released at the moment
// of death. Slowdown and message-drop faults are *advisory* here: the
// charging call sites consult slowdown()/drops_messages() because only
// they know which modeled seconds a fault dilates. Batch-triggered events
// advance via advance_to_batch() (sequential consumers) or are read as
// pure per-batch snapshots straight off the plan (the streaming serving
// path); time-triggered events fire in apply_time_faults(), called
// between super-steps. The death mask is atomic so a sequential consumer
// may mark deaths while a concurrent spmd super-step reads it — every
// other fault field is owned by sequential code.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/clock.hpp"
#include "sim/fault.hpp"
#include "sim/grid.hpp"
#include "sim/machine_model.hpp"
#include "util/thread_pool.hpp"

namespace pastis::sim {

class SimRuntime {
 public:
  SimRuntime(int p, MachineModel model,
             util::ThreadPool* pool = &util::ThreadPool::global())
      : grid_(p), model_(model), clocks_(static_cast<std::size_t>(p)),
        pool_(pool), dead_(static_cast<std::size_t>(p)),
        slowdown_(static_cast<std::size_t>(p), 1.0),
        drop_(static_cast<std::size_t>(p), 0) {}

  [[nodiscard]] const ProcGrid& grid() const { return grid_; }
  [[nodiscard]] const MachineModel& model() const { return model_; }
  [[nodiscard]] int nprocs() const { return grid_.size(); }

  [[nodiscard]] RankClock& clock(int rank) {
    return clocks_[static_cast<std::size_t>(rank)];
  }
  [[nodiscard]] const RankClock& clock(int rank) const {
    return clocks_[static_cast<std::size_t>(rank)];
  }
  [[nodiscard]] const std::vector<RankClock>& clocks() const { return clocks_; }

  /// Executes fn(rank) for every ALIVE rank, in parallel on the host pool.
  /// This is one bulk-synchronous super-step: callers sequence super-steps
  /// the way barriers/collectives would on the real machine. Dead ranks'
  /// tasks are skipped — the fault plan's kDeath contract.
  void spmd(const std::function<void(int)>& fn) {
    pool_->parallel_for(static_cast<std::size_t>(nprocs()),
                        [&](std::size_t r) {
                          if (dead_[r].load(std::memory_order_relaxed) != 0) {
                            return;
                          }
                          fn(static_cast<int>(r));
                        });
  }

  /// Sequential variant (used where determinism debugging is needed).
  void spmd_serial(const std::function<void(int)>& fn) {
    for (int r = 0; r < nprocs(); ++r) {
      if (alive(r)) fn(r);
    }
  }

  // ---- fault injection (sim/fault.hpp) ------------------------------------
  /// Installs the plan and resets transient fault state (deaths already
  /// applied are NOT revived — death is permanent).
  void install_faults(FaultPlan plan) {
    plan_ = std::move(plan);
    plan_.validate();
    std::fill(slowdown_.begin(), slowdown_.end(), 1.0);
    std::fill(drop_.begin(), drop_.end(), 0);
  }
  [[nodiscard]] const FaultPlan& fault_plan() const { return plan_; }

  /// Applies the plan's batch-triggered events as of serving batch
  /// `batch`: fires deaths, sets the transient slowdown/drop windows.
  /// Sequential consumers only (the streaming serving path reads pure
  /// FaultPlan::snapshot_at_batch snapshots instead).
  void advance_to_batch(std::uint64_t batch) {
    if (plan_.empty()) return;
    const FaultSnapshot s = plan_.snapshot_at_batch(batch, nprocs());
    for (int r = 0; r < nprocs(); ++r) {
      const auto ri = static_cast<std::size_t>(r);
      if (s.dead[ri] != 0 && alive(r)) kill_rank(r);
      slowdown_[ri] = s.slowdown[ri];
      drop_[ri] = s.drop[ri];
    }
  }

  /// Fires time-triggered events whose rank's modeled clock total has
  /// reached the trigger. Call between super-steps (sequential contexts).
  void apply_time_faults() {
    for (const auto& e : plan_.events) {
      if (!e.time_triggered() || e.rank < 0 || e.rank >= nprocs()) continue;
      const auto ri = static_cast<std::size_t>(e.rank);
      if (clocks_[ri].total() < e.at_time_s) continue;
      switch (e.kind) {
        case FaultKind::kDeath:
          if (alive(e.rank)) kill_rank(e.rank);
          break;
        case FaultKind::kSlowdown:
          slowdown_[ri] = std::max(slowdown_[ri], e.factor);
          break;
        case FaultKind::kDropMessages:
          drop_[ri] = 1;
          break;
      }
    }
  }

  /// Kills `rank` now: its spmd tasks are skipped from here on, its clock
  /// frozen (merge_frame ignores it), and its ledgered resident bytes
  /// released (the high-water mark keeps the history). Idempotent.
  void kill_rank(int rank) {
    const auto ri = static_cast<std::size_t>(rank);
    if (dead_[ri].exchange(1, std::memory_order_relaxed) != 0) return;
    clocks_[ri].sub_resident(clocks_[ri].resident_bytes);
  }

  [[nodiscard]] bool alive(int rank) const {
    return dead_[static_cast<std::size_t>(rank)].load(
               std::memory_order_relaxed) == 0;
  }
  [[nodiscard]] int n_alive() const {
    int n = 0;
    for (int r = 0; r < nprocs(); ++r) n += alive(r) ? 1 : 0;
    return n;
  }
  /// Modeled dilation of this rank's task seconds (>= 1; advisory — the
  /// charging call sites apply it).
  [[nodiscard]] double slowdown(int rank) const {
    return slowdown_[static_cast<std::size_t>(rank)];
  }
  /// Whether messages FROM this rank are currently dropped (advisory; the
  /// sending call sites charge the resend through exec::RetryPolicy).
  [[nodiscard]] bool drops_messages(int rank) const {
    return drop_[static_cast<std::size_t>(rank)] != 0;
  }

  /// Sum/max helpers over per-rank modeled component times.
  [[nodiscard]] double max_over_ranks(Comp c) const {
    double m = 0.0;
    for (const auto& ck : clocks_) m = std::max(m, ck.get(c));
    return m;
  }
  [[nodiscard]] double sum_over_ranks(Comp c) const {
    double s = 0.0;
    for (const auto& ck : clocks_) s += ck.get(c);
    return s;
  }

  void reset_clocks() {
    for (auto& c : clocks_) c = RankClock{};
  }

  /// Resident-bytes ledger reductions (see RankClock::add_resident): the
  /// per-rank high-water marks and their max — the quantity a
  /// rank_memory_budget_bytes gate compares against.
  [[nodiscard]] std::vector<std::uint64_t> peak_resident_bytes() const {
    std::vector<std::uint64_t> out(clocks_.size());
    for (std::size_t r = 0; r < clocks_.size(); ++r) {
      out[r] = clocks_[r].peak_memory_bytes;
    }
    return out;
  }
  [[nodiscard]] std::uint64_t max_peak_resident_bytes() const {
    std::uint64_t m = 0;
    for (const auto& c : clocks_) m = std::max(m, c.peak_memory_bytes);
    return m;
  }

  /// A detached per-rank clock frame (all zeros) for concurrent stage
  /// slots; fold back with merge_frame.
  [[nodiscard]] std::vector<RankClock> make_frame() const {
    return std::vector<RankClock>(static_cast<std::size_t>(nprocs()));
  }

  /// Folds a detached per-rank clock frame (one RankClock per rank) into
  /// the shared clocks. Concurrent stage-slots of the streaming executor
  /// each charge their own frame (race-free; see SummaOptions::clocks)
  /// and merge in a deterministic order at retirement, so component
  /// totals are schedule-independent. Dead ranks' clocks are frozen:
  /// their frame entries are dropped.
  void merge_frame(const std::vector<RankClock>& frame) {
    for (int r = 0; r < nprocs(); ++r) {
      if (!alive(r)) continue;
      clocks_[static_cast<std::size_t>(r)].merge(
          frame[static_cast<std::size_t>(r)]);
    }
  }

 private:
  ProcGrid grid_;
  MachineModel model_;
  std::vector<RankClock> clocks_;
  util::ThreadPool* pool_;

  // Fault state. The death mask is atomic (spmd reads it while a
  // sequential consumer fires deaths); slowdown/drop are owned by
  // sequential code and advisory to charging call sites.
  FaultPlan plan_;
  std::vector<std::atomic<std::uint8_t>> dead_;
  std::vector<double> slowdown_;
  std::vector<char> drop_;
};

}  // namespace pastis::sim
