// Simulated SPMD runtime.
//
// `p` logical ranks (one per simulated Summit node) execute rank-indexed
// lambdas; real data moves between their rank-local containers while wire
// time is charged to the MachineModel. Rank tasks run in parallel on the
// host thread pool — each task touches only its rank's slot, so the
// execution is race-free and, more importantly, *deterministic*: results
// are bit-identical regardless of host core count, which is the property
// the paper claims for PASTIS itself.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/clock.hpp"
#include "sim/grid.hpp"
#include "sim/machine_model.hpp"
#include "util/thread_pool.hpp"

namespace pastis::sim {

class SimRuntime {
 public:
  SimRuntime(int p, MachineModel model,
             util::ThreadPool* pool = &util::ThreadPool::global())
      : grid_(p), model_(model), clocks_(static_cast<std::size_t>(p)),
        pool_(pool) {}

  [[nodiscard]] const ProcGrid& grid() const { return grid_; }
  [[nodiscard]] const MachineModel& model() const { return model_; }
  [[nodiscard]] int nprocs() const { return grid_.size(); }

  [[nodiscard]] RankClock& clock(int rank) {
    return clocks_[static_cast<std::size_t>(rank)];
  }
  [[nodiscard]] const RankClock& clock(int rank) const {
    return clocks_[static_cast<std::size_t>(rank)];
  }
  [[nodiscard]] const std::vector<RankClock>& clocks() const { return clocks_; }

  /// Executes fn(rank) for every rank, in parallel on the host pool. This
  /// is one bulk-synchronous super-step: callers sequence super-steps the
  /// way barriers/collectives would on the real machine.
  void spmd(const std::function<void(int)>& fn) {
    pool_->parallel_for(static_cast<std::size_t>(nprocs()),
                        [&](std::size_t r) { fn(static_cast<int>(r)); });
  }

  /// Sequential variant (used where determinism debugging is needed).
  void spmd_serial(const std::function<void(int)>& fn) {
    for (int r = 0; r < nprocs(); ++r) fn(r);
  }

  /// Sum/max helpers over per-rank modeled component times.
  [[nodiscard]] double max_over_ranks(Comp c) const {
    double m = 0.0;
    for (const auto& ck : clocks_) m = std::max(m, ck.get(c));
    return m;
  }
  [[nodiscard]] double sum_over_ranks(Comp c) const {
    double s = 0.0;
    for (const auto& ck : clocks_) s += ck.get(c);
    return s;
  }

  void reset_clocks() {
    for (auto& c : clocks_) c = RankClock{};
  }

  /// Resident-bytes ledger reductions (see RankClock::add_resident): the
  /// per-rank high-water marks and their max — the quantity a
  /// rank_memory_budget_bytes gate compares against.
  [[nodiscard]] std::vector<std::uint64_t> peak_resident_bytes() const {
    std::vector<std::uint64_t> out(clocks_.size());
    for (std::size_t r = 0; r < clocks_.size(); ++r) {
      out[r] = clocks_[r].peak_memory_bytes;
    }
    return out;
  }
  [[nodiscard]] std::uint64_t max_peak_resident_bytes() const {
    std::uint64_t m = 0;
    for (const auto& c : clocks_) m = std::max(m, c.peak_memory_bytes);
    return m;
  }

  /// A detached per-rank clock frame (all zeros) for concurrent stage
  /// slots; fold back with merge_frame.
  [[nodiscard]] std::vector<RankClock> make_frame() const {
    return std::vector<RankClock>(static_cast<std::size_t>(nprocs()));
  }

  /// Folds a detached per-rank clock frame (one RankClock per rank) into
  /// the shared clocks. Concurrent stage-slots of the streaming executor
  /// each charge their own frame (race-free; see SummaOptions::clocks)
  /// and merge in a deterministic order at retirement, so component
  /// totals are schedule-independent.
  void merge_frame(const std::vector<RankClock>& frame) {
    for (int r = 0; r < nprocs(); ++r) {
      clocks_[static_cast<std::size_t>(r)].merge(
          frame[static_cast<std::size_t>(r)]);
    }
  }

 private:
  ProcGrid grid_;
  MachineModel model_;
  std::vector<RankClock> clocks_;
  util::ThreadPool* pool_;
};

}  // namespace pastis::sim
