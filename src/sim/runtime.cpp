// Intentionally small: the runtime is header-only; this TU anchors the
// static library and hosts the one non-inline helper.
#include "sim/runtime.hpp"

namespace pastis::sim {

// (No out-of-line definitions currently required.)

}  // namespace pastis::sim
