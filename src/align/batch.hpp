// Batch pairwise aligner modelled on ADEPT [Awan et al., BMC Bioinformatics
// 2020], the GPU library the paper dedicates Summit's V100s to.
//
// ADEPT's driver detects the node's GPUs, splits a batch of alignments
// across them, and runs one host thread per device for packing and
// transfers. We reproduce that architecture: `devices` logical accelerators,
// each fed a slice of the batch by a driver thread. Alignment *results* are
// computed exactly (CPU kernels from this module's siblings); alignment
// *time* is charged to the device model (cells / GCUPS), which is how every
// paper-facing number stays hardware-independent.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string_view>
#include <vector>

#include "align/banded.hpp"
#include "align/smith_waterman.hpp"
#include "align/xdrop.hpp"
#include "obs/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace pastis::align {

enum class AlignKind { kFullSW, kBanded, kXDrop };

/// One pairwise alignment request. Seeds come from the overlap matrix's
/// CommonKmers payload and are only consulted by the banded/x-drop kernels.
struct AlignTask {
  std::uint32_t q_id = 0;
  std::uint32_t r_id = 0;
  std::uint32_t seed_q = 0;
  std::uint32_t seed_r = 0;
};

/// Work/time accounting for one or more batches.
struct BatchStats {
  std::uint64_t pairs = 0;
  std::uint64_t cells = 0;          // DP cells updated
  double kernel_seconds = 0.0;      // modeled device kernel time (max device)
  double packing_seconds = 0.0;     // modeled host pack/transfer time
  std::uint64_t h2d_bytes = 0;      // sequence bytes shipped to devices

  void merge(const BatchStats& o) {
    pairs += o.pairs;
    cells += o.cells;
    kernel_seconds += o.kernel_seconds;
    packing_seconds += o.packing_seconds;
    h2d_bytes += o.h2d_bytes;
  }
};

/// Reusable lane-assignment buffers (one per rank, or per executor slot).
/// The aligner itself is immutable and re-entrant; all mutable per-batch
/// state lives in these scratch objects, so the streaming executor keeps
/// one per in-flight slot instead of allocating per call.
struct LaneScratch {
  std::vector<int> lanes;
  std::vector<std::uint64_t> load;          // per device: Σ |q|·|r| proxy
  std::vector<std::uint64_t> device_cells;  // stats_for accumulators
  std::vector<std::uint64_t> device_pairs;
};

/// Reusable whole-batch buffers for one executor slot: the flattened
/// result array plus lane scratch for batch-granular calls.
struct AlignWorkspace {
  std::vector<AlignResult> results;
  LaneScratch lanes;
};

class BatchAligner {
 public:
  struct Config {
    AlignKind kind = AlignKind::kFullSW;
    /// Logical accelerators per node (Summit: 6 V100s).
    int devices = 6;
    /// Sustained cell updates per second per device. Default calibrated so
    /// a 3364-node run peaks near the paper's 176.3 TCUPS
    /// (176.3e12 / 3364 nodes / 6 GPUs ≈ 8.7e9).
    double cups_per_device = 8.7e9;
    /// Host-side packing/transfer cost per pair (driver threads).
    double pack_seconds_per_pair = 2.0e-7;
    int band_half_width = 32;
    int xdrop = 25;
    std::uint32_t seed_len = 6;
    /// Telemetry sinks (null = off). With metrics, every accounted batch
    /// adds per-lane cells/pairs counters ("align.lane<d>.cells_total"),
    /// batch totals, and a measured cells/second histogram per driver lane
    /// from the workspace align_batch; with a tracer, each batch run is a
    /// measured span. Results are unaffected.
    obs::Telemetry telemetry;
  };

  BatchAligner(Scoring scoring, Config config)
      : scoring_(std::move(scoring)), config_(config) {}

  /// Resolves sequence residues for a global sequence id.
  using SeqAccessor = std::function<std::string_view(std::uint32_t)>;

  /// Aligns every task. When `pool` is non-null the batch is split across
  /// `config.devices` driver lanes executed on the pool (the ADEPT driver
  /// layout); otherwise it runs inline in the calling thread (the mode used
  /// inside the simulated ranks, which are already running in parallel).
  /// Results are positionally parallel to `tasks` and independent of the
  /// execution mode.
  std::vector<AlignResult> align_batch(const SeqAccessor& seq_of,
                                       std::span<const AlignTask> tasks,
                                       BatchStats* stats = nullptr,
                                       util::ThreadPool* pool = nullptr) const;

  /// Workspace variant of align_batch for re-entrant streaming use: results
  /// land in `ws.results` (capacity reused across calls) and the returned
  /// span views them. Element-wise identical to align_batch.
  std::span<const AlignResult> align_batch(const SeqAccessor& seq_of,
                                           std::span<const AlignTask> tasks,
                                           AlignWorkspace& ws,
                                           BatchStats* stats = nullptr,
                                           util::ThreadPool* pool = nullptr) const;

  /// Aligns a single task (element-wise identical to align_batch). The
  /// simulated runtime uses this to flatten many ranks' batches onto one
  /// host pool while keeping per-rank accounting exact.
  [[nodiscard]] AlignResult align_one_task(const SeqAccessor& seq_of,
                                           const AlignTask& task) const {
    return align_pair(seq_of(task.q_id), seq_of(task.r_id), task,
                      config_.kind);
  }
  /// Same, with an explicit kernel override.
  [[nodiscard]] AlignResult align_one_task(const SeqAccessor& seq_of,
                                           const AlignTask& task,
                                           AlignKind kind) const {
    return align_pair(seq_of(task.q_id), seq_of(task.r_id), task, kind);
  }

  /// One pair through the table-driven kernel dispatch with an explicit
  /// kind. This is the cascade tiers' entry point: tier 1 probes with a
  /// cheap kind (banded / x-drop), tier 2 re-runs the configured kind —
  /// all sharing the same scoring, band and x-drop knobs and the same
  /// lane-assignment/workspace machinery as the batch paths.
  [[nodiscard]] AlignResult align_pair(std::string_view q, std::string_view r,
                                       const AlignTask& task,
                                       AlignKind kind) const;

  /// Device-model accounting for a batch whose results are already known.
  /// The overload without `lanes` reproduces align_batch's greedy lane
  /// assignment; when the caller already holds the lanes (align_batch
  /// itself, or a caller aligning + accounting the same task list), pass
  /// them through to skip the redundant O(tasks × devices) pass.
  [[nodiscard]] BatchStats stats_for(const SeqAccessor& seq_of,
                                     std::span<const AlignTask> tasks,
                                     std::span<const AlignResult> results) const;
  [[nodiscard]] BatchStats stats_for(const SeqAccessor& seq_of,
                                     std::span<const AlignTask> tasks,
                                     std::span<const AlignResult> results,
                                     std::span<const int> lanes) const;
  /// Allocation-free accounting on a reusable scratch (re-entrant stage
  /// path): assigns lanes into `scratch` and accumulates through its
  /// per-device buffers. Identical numbers to the allocating overloads.
  [[nodiscard]] BatchStats stats_for(const SeqAccessor& seq_of,
                                     std::span<const AlignTask> tasks,
                                     std::span<const AlignResult> results,
                                     LaneScratch& scratch) const;

  /// Deterministic device assignment: tasks go to the least-loaded device
  /// by the DP-size proxy |q|*|r| (the ADEPT driver balances its per-GPU
  /// batches; plain round-robin quantizes badly when batches are small).
  [[nodiscard]] std::vector<int> assign_lanes(
      const SeqAccessor& seq_of, std::span<const AlignTask> tasks) const;
  /// Scratch variant: fills `scratch.lanes` reusing its capacity.
  void assign_lanes(const SeqAccessor& seq_of, std::span<const AlignTask> tasks,
                    LaneScratch& scratch) const;

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] const Scoring& scoring() const { return scoring_; }

 private:
  /// One kernel entry per AlignKind, indexed by the enum value — the single
  /// dispatch point shared by every batch path and every cascade tier.
  using KernelFn = AlignResult (BatchAligner::*)(std::string_view,
                                                 std::string_view,
                                                 const AlignTask&) const;
  static const KernelFn kKernelTable[3];
  [[nodiscard]] AlignResult run_full_sw(std::string_view q, std::string_view r,
                                        const AlignTask& task) const;
  [[nodiscard]] AlignResult run_banded(std::string_view q, std::string_view r,
                                       const AlignTask& task) const;
  [[nodiscard]] AlignResult run_xdrop(std::string_view q, std::string_view r,
                                      const AlignTask& task) const;
  [[nodiscard]] BatchStats stats_with(const SeqAccessor& seq_of,
                                      std::span<const AlignTask> tasks,
                                      std::span<const AlignResult> results,
                                      std::span<const int> lanes,
                                      std::vector<std::uint64_t>& device_cells,
                                      std::vector<std::uint64_t>& device_pairs) const;

  Scoring scoring_;
  Config config_;
};

}  // namespace pastis::align
