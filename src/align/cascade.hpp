// Tiered sensitivity cascade ahead of batch alignment (ROADMAP direction 1;
// the paper's §IX names prefiltering as the sensitivity/throughput axis on
// which MMseqs2 trades against PASTIS).
//
// Tier 0 screens every SpGEMM candidate with a shared-k-mer count threshold
// plus a diagonal-bucketed ungapped extension over the seed positions the
// overlap semiring already carries (core/common_kmers.hpp keeps the
// lexicographic min/max seed pair per element). Tier 1 probes survivors
// with a cheap DP kernel — banded Smith-Waterman or x-drop extension — and
// a per-tier score cutoff. Tier 2 is the existing batch path: the
// configured alignment kind runs only on pairs that survive both screens.
//
// Every tier is disabled by default, so the exact path is bit-identical by
// construction (a single branch per candidate). The `exact()` preset
// enables both tiers with thresholds that reject nothing — the screens run
// and report their measured work, but the output is still bit-identical —
// and `fast()` is the documented throughput preset whose ≥2x alignment-cell
// reduction at ≥0.95 recall is hard-gated by bench_sensitivity_cascade.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string_view>

#include "align/batch.hpp"
#include "align/scoring.hpp"

namespace pastis::align {

/// Sentinel score threshold that rejects nothing.
inline constexpr int kCascadeNoCutoff = std::numeric_limits<int>::min();

/// A seed position pair in alignment-task orientation: `q` indexes the
/// task's query sequence, `r` its reference. (Kept distinct from
/// core::SeedPair, whose pos_a/pos_b follow matrix-element orientation, so
/// this header stays free of core dependencies.)
struct Seed {
  std::uint32_t q = 0;
  std::uint32_t r = 0;
};

/// Knobs of the tiered prefilter cascade, threaded through PastisConfig
/// into the pipeline's {discover, screen, align} stage graph and
/// QueryEngine::serve(). All-off default == the exact path.
struct CascadeOptions {
  // --- Tier 0: shared-k-mer count + diagonal-bucketed ungapped extension --
  bool tier0_enabled = false;
  /// Minimum shared-k-mer count (applied on top of the global
  /// common_kmer_threshold, which still gates candidate extraction).
  std::uint32_t tier0_min_count = 0;
  /// Minimum best ungapped-extension score over the carried seeds.
  int tier0_min_ungapped_score = kCascadeNoCutoff;
  /// Minimum number of agreeing minhash sketch slots between query and
  /// reference (index format v4 sketch table); 0 disables the sketch
  /// screen, and pairs without a sketch (delta-segment references, v2/v3
  /// indexes) always pass it.
  int tier0_min_sketch_overlap = 0;

  // --- Tier 1: banded / x-drop probe with score + coverage cutoffs -------
  bool tier1_enabled = false;
  /// Probe kernel; kFullSW is allowed but pointless (it is tier 2).
  AlignKind tier1_kind = AlignKind::kXDrop;
  int tier1_min_score = kCascadeNoCutoff;
  /// Minimum short coverage of the probe's alignment window (the same
  /// min-of-both-sequences ratio the final edge filter thresholds at
  /// 0.70). Raw score is length-blind — high-scoring low-complexity
  /// repeat pairs sail past any score cutoff but cover only a fragment —
  /// so this is the knob that separates homologs from repeats. 0 (or
  /// negative) disables the coverage screen.
  double tier1_min_cov = 0.0;

  [[nodiscard]] bool any() const { return tier0_enabled || tier1_enabled; }

  /// Deterministic fingerprint of every knob, folded into the ResultCache
  /// key so retuning thresholds can never serve stale cascade results.
  /// Exactly 0 when the cascade is fully disabled.
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// Both tiers on with thresholds that reject nothing: measures screen
  /// cost at zero sensitivity loss, output bit-identical to all-off.
  [[nodiscard]] static CascadeOptions exact();
  /// The documented throughput preset (benchmarked recall ≥ 0.95 on the
  /// metagenome generator with ≥ 2x alignment-cell reduction).
  [[nodiscard]] static CascadeOptions fast();
};

/// Measured work of one tier over a block/batch of candidates.
struct TierStats {
  std::uint64_t pairs_in = 0;
  std::uint64_t pairs_out = 0;  // survivors handed to the next tier
  std::uint64_t rejects = 0;
  std::uint64_t cells = 0;      // scalar cells updated by the screen

  void merge(const TierStats& o) {
    pairs_in += o.pairs_in;
    pairs_out += o.pairs_out;
    rejects += o.rejects;
    cells += o.cells;
  }
};

/// Per-tier measured work of the whole cascade.
struct CascadeStats {
  TierStats tier0;
  TierStats tier1;

  void merge(const CascadeStats& o) {
    tier0.merge(o.tier0);
    tier1.merge(o.tier1);
  }
  [[nodiscard]] std::uint64_t screen_cells() const {
    return tier0.cells + tier1.cells;
  }
};

/// Outcome of the tier-0 ungapped diagonal extension of one pair.
struct UngappedExtension {
  int score = 0;           // best x-drop ungapped score over the seeds
  std::uint64_t cells = 0; // diagonal cells scanned
  int seeds_extended = 0;  // seeds left after diagonal bucketing
};

/// Ungapped x-drop extension of `seeds` along their diagonals, clamped to
/// the sequence bounds (seed residues past either end are not scored and
/// the seed start is pulled back onto the valid diagonal segment, so
/// callers never pre-validate positions — unlike xdrop_extend, which
/// returns empty for malformed seeds). Seeds whose diagonals lie within
/// `2*bucket_half_width` of an already-extended seed are skipped: they
/// would rediscover the same band. Symmetric under swapping the two
/// sequences together with every seed's coordinates.
[[nodiscard]] UngappedExtension ungapped_diag_extend(
    std::string_view q, std::string_view r, std::span<const Seed> seeds,
    std::uint32_t seed_len, const Scoring& scoring, int xdrop,
    int bucket_half_width);

/// Tier-0 screen of one candidate pair: shared-k-mer count, optional
/// minhash sketch agreement (`sketch_overlap < 0` = no sketch available,
/// always passes), then the ungapped diagonal extension. Returns true when
/// the pair survives; `ts` accumulates measured work.
[[nodiscard]] bool tier0_keep(std::string_view q, std::string_view r,
                              std::span<const Seed> seeds,
                              std::uint32_t shared_kmers, int sketch_overlap,
                              const BatchAligner& aligner,
                              const CascadeOptions& opt, TierStats& ts);

/// Tier-1 screen of one candidate pair: the probe kernel (tier1_kind) via
/// the aligner's table-driven dispatch, with the per-tier score cutoff.
[[nodiscard]] bool tier1_keep(std::string_view q, std::string_view r,
                              const AlignTask& task,
                              const BatchAligner& aligner,
                              const CascadeOptions& opt, TierStats& ts);

/// Whole-cascade screen of one candidate (tier 0 then tier 1). With every
/// tier disabled this is a single branch and the pair always survives —
/// the exact path by construction.
[[nodiscard]] bool cascade_keep(std::string_view q, std::string_view r,
                                const AlignTask& task,
                                std::uint32_t shared_kmers,
                                std::span<const Seed> seeds,
                                int sketch_overlap,
                                const BatchAligner& aligner,
                                const CascadeOptions& opt,
                                CascadeStats& stats);

}  // namespace pastis::align
