// Banded Smith-Waterman: the DP is restricted to a diagonal band around the
// seed diagonal discovered during the sparse overlap phase. This trades
// sensitivity for an O(band·len) kernel and is provided as the cheaper
// alternative alignment mode (PASTIS exposes several alignment modes through
// SeqAn; the full-matrix ADEPT kernel remains the production default).
#pragma once

#include <string_view>

#include "align/smith_waterman.hpp"

namespace pastis::align {

/// Aligns within the band |(j - i) - diag_center| <= half_width, where i/j
/// are 0-based query/reference offsets. `diag_center` is typically
/// seed_r - seed_q from a shared k-mer. Cells outside the band are not
/// updated (and are charged accordingly in `cells`).
[[nodiscard]] AlignResult banded_smith_waterman(std::string_view query,
                                                std::string_view reference,
                                                const Scoring& scoring,
                                                int diag_center,
                                                int half_width);

}  // namespace pastis::align
