#include "align/banded.hpp"

#include <algorithm>
#include <vector>

namespace pastis::align {

AlignResult banded_smith_waterman(std::string_view query,
                                  std::string_view reference,
                                  const Scoring& scoring, int diag_center,
                                  int half_width) {
  AlignResult res;
  const auto m = static_cast<std::int64_t>(query.size());
  const auto n = static_cast<std::int64_t>(reference.size());
  if (m == 0 || n == 0 || half_width < 0) return res;

  std::vector<std::uint8_t> q(query.size()), r(reference.size());
  for (std::size_t i = 0; i < query.size(); ++i)
    q[i] = Scoring::encode(query[i]);
  for (std::size_t j = 0; j < reference.size(); ++j)
    r[j] = Scoring::encode(reference[j]);

  const int go = scoring.gap_open() + scoring.gap_extend();
  const int ge = scoring.gap_extend();
  constexpr int kNegInf = -(1 << 28);

  struct PathStat {
    std::uint32_t beg_q = 0, beg_r = 0, matches = 0, len = 0;
  };

  std::vector<int> h_prev(n + 1, 0), h_cur(n + 1, 0);
  std::vector<int> f_prev(n + 1, kNegInf), f_cur(n + 1, kNegInf);
  std::vector<PathStat> sh_prev(n + 1), sh_cur(n + 1);
  std::vector<PathStat> sf_prev(n + 1), sf_cur(n + 1);

  int best = 0;
  std::uint32_t best_i = 0, best_j = 0;
  PathStat best_stat;
  std::uint64_t cells = 0;

  for (std::int64_t i = 1; i <= m; ++i) {
    // Band for this row in 1-based j: j - i in [diag - w, diag + w].
    const std::int64_t lo =
        std::max<std::int64_t>(1, i + diag_center - half_width);
    const std::int64_t hi =
        std::min<std::int64_t>(n, i + diag_center + half_width);
    if (lo > hi) break;

    // Cells just outside the band behave as score 0 / -inf boundaries.
    if (lo >= 1) {
      h_cur[lo - 1] = 0;
      sh_cur[lo - 1] = PathStat{};
    }
    int e_score = kNegInf;
    PathStat e_stat;
    const std::uint8_t qi = q[i - 1];

    for (std::int64_t j = lo; j <= hi; ++j) {
      ++cells;
      const int e_open = h_cur[j - 1] - go;
      const int e_ext = e_score - ge;
      if (e_open >= e_ext) {
        e_score = e_open;
        e_stat = sh_cur[j - 1];
      } else {
        e_score = e_ext;
      }
      ++e_stat.len;

      const int f_open = h_prev[j] - go;
      const int f_ext = f_prev[j] - ge;
      PathStat f_stat;
      int f_score;
      if (f_open >= f_ext) {
        f_score = f_open;
        f_stat = sh_prev[j];
      } else {
        f_score = f_ext;
        f_stat = sf_prev[j];
      }
      ++f_stat.len;
      f_cur[j] = f_score;
      sf_cur[j] = f_stat;

      const bool is_match = qi == r[j - 1];
      const int diag = h_prev[j - 1] + scoring.score(qi, r[j - 1]);
      PathStat d_stat;
      if (h_prev[j - 1] > 0) {
        d_stat = sh_prev[j - 1];
      } else {
        d_stat.beg_q = static_cast<std::uint32_t>(i - 1);
        d_stat.beg_r = static_cast<std::uint32_t>(j - 1);
      }
      d_stat.matches += is_match ? 1u : 0u;
      ++d_stat.len;

      int h = diag;
      PathStat s = d_stat;
      if (f_score > h) {
        h = f_score;
        s = f_stat;
      }
      if (e_score > h) {
        h = e_score;
        s = e_stat;
      }
      if (h <= 0) {
        h = 0;
        s = PathStat{};
      }
      h_cur[j] = h;
      sh_cur[j] = s;
      if (h > best) {
        best = h;
        best_i = static_cast<std::uint32_t>(i);
        best_j = static_cast<std::uint32_t>(j);
        best_stat = s;
      }
    }
    // Clear the cell to the right of the band so the next row's diagonal
    // transition from it behaves as a boundary.
    if (hi + 1 <= n) {
      h_cur[hi + 1] = 0;
      f_cur[hi + 1] = kNegInf;
      sh_cur[hi + 1] = PathStat{};
    }
    std::swap(h_prev, h_cur);
    std::swap(f_prev, f_cur);
    std::swap(sh_prev, sh_cur);
    std::swap(sf_prev, sf_cur);
  }

  res.cells = cells;
  res.score = best;
  if (best > 0) {
    res.beg_q = best_stat.beg_q;
    res.beg_r = best_stat.beg_r;
    res.end_q = best_i;
    res.end_r = best_j;
    res.matches = best_stat.matches;
    res.align_len = best_stat.len;
  }
  return res;
}

}  // namespace pastis::align
