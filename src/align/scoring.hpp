// Protein substitution scoring.
//
// The production run in the paper (Table IV) uses BLOSUM62 with gap open 11
// and gap extension 2; BLOSUM45 and PAM250 are provided for the sensitivity
// ablation. Matrices are stored over the 24-letter extended amino-acid
// alphabet ARNDCQEGHILKMFPSTWYVBZX* (NCBI order); 'U'/'O'/'J' are folded to
// their closest standard residue on lookup.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace pastis::align {

/// Number of residue codes in the scoring alphabet.
inline constexpr int kScoreAlphabet = 24;

/// A substitution matrix plus affine gap parameters.
class Scoring {
 public:
  enum class Matrix { kBlosum62, kBlosum45, kPam250 };

  /// `gap_open` is the cost of opening a gap, `gap_extend` the cost per
  /// residue; a gap of length L costs gap_open + L * gap_extend (both
  /// positive numbers; they are subtracted during DP).
  Scoring(Matrix matrix, int gap_open, int gap_extend);

  /// Paper defaults: BLOSUM62, open 11, extend 2.
  static Scoring pastis_default() {
    return {Matrix::kBlosum62, 11, 2};
  }

  /// Residue code for an ASCII amino-acid letter (case-insensitive).
  /// Unknown characters map to 'X'.
  [[nodiscard]] static std::uint8_t encode(char aa);
  [[nodiscard]] static char decode(std::uint8_t code);

  /// Substitution score between two residue codes.
  [[nodiscard]] int score(std::uint8_t a, std::uint8_t b) const {
    return table_[a][b];
  }
  /// Substitution score between two ASCII letters.
  [[nodiscard]] int score_chars(char a, char b) const {
    return score(encode(a), encode(b));
  }

  [[nodiscard]] int gap_open() const { return gap_open_; }
  [[nodiscard]] int gap_extend() const { return gap_extend_; }
  [[nodiscard]] Matrix matrix() const { return matrix_; }

 private:
  Matrix matrix_;
  int gap_open_;
  int gap_extend_;
  std::array<std::array<std::int8_t, kScoreAlphabet>, kScoreAlphabet> table_;
};

/// The 24-letter residue ordering used by the scoring tables.
[[nodiscard]] std::string_view scoring_residues();

}  // namespace pastis::align
