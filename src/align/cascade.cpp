#include "align/cascade.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "util/rng.hpp"

namespace pastis::align {

namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  return util::splitmix64(h ^ (v + 0x9e3779b97f4a7c15ULL));
}

}  // namespace

std::uint64_t CascadeOptions::fingerprint() const {
  if (!any()) return 0;
  std::uint64_t h = 0x70617374u;  // arbitrary non-zero base
  h = mix(h, tier0_enabled ? 1 : 0);
  h = mix(h, tier0_min_count);
  h = mix(h, static_cast<std::uint64_t>(
                 static_cast<std::int64_t>(tier0_min_ungapped_score)));
  h = mix(h, static_cast<std::uint64_t>(tier0_min_sketch_overlap));
  h = mix(h, tier1_enabled ? 1 : 0);
  h = mix(h, static_cast<std::uint64_t>(tier1_kind));
  h = mix(h, static_cast<std::uint64_t>(
                 static_cast<std::int64_t>(tier1_min_score)));
  // The coverage cutoff participates bit-exactly: any retune, however
  // small, must miss old ResultCache entries.
  std::uint64_t cov_bits = 0;
  static_assert(sizeof(cov_bits) == sizeof(tier1_min_cov));
  std::memcpy(&cov_bits, &tier1_min_cov, sizeof(cov_bits));
  h = mix(h, cov_bits);
  return h == 0 ? 1 : h;  // never collide with "cascade off"
}

CascadeOptions CascadeOptions::exact() {
  CascadeOptions o;
  o.tier0_enabled = true;
  o.tier0_min_count = 0;
  o.tier0_min_ungapped_score = kCascadeNoCutoff;
  o.tier0_min_sketch_overlap = 0;
  o.tier1_enabled = true;
  o.tier1_kind = AlignKind::kXDrop;
  o.tier1_min_score = kCascadeNoCutoff;
  return o;
}

CascadeOptions CascadeOptions::fast() {
  // Tuned on bench_sensitivity_cascade's background-heavy metagenome blend
  // (family fraction 0.35, low-complexity 0.5, ckt 1): ~3.6x alignment-cell
  // reduction at ~0.97 edge recall. The probe-coverage cutoff does the
  // heavy lifting — high-scoring low-complexity repeat pairs fail it while
  // near-full-length homologs pass — sitting safely below the final edge
  // filter's 0.70 so borderline true edges are not pre-empted.
  CascadeOptions o;
  o.tier0_enabled = true;
  o.tier0_min_count = 0;       // the global common_kmer_threshold still gates
  o.tier0_min_ungapped_score = 27;
  o.tier0_min_sketch_overlap = 0;
  o.tier1_enabled = true;
  o.tier1_kind = AlignKind::kBanded;
  o.tier1_min_score = 45;
  o.tier1_min_cov = 0.5;
  return o;
}

UngappedExtension ungapped_diag_extend(std::string_view q, std::string_view r,
                                       std::span<const Seed> seeds,
                                       std::uint32_t seed_len,
                                       const Scoring& scoring, int xdrop,
                                       int bucket_half_width) {
  UngappedExtension out;
  const auto nq = static_cast<std::int64_t>(q.size());
  const auto nr = static_cast<std::int64_t>(r.size());
  if (nq == 0 || nr == 0 || seeds.empty()) return out;

  // Diagonals already extended; a new seed within 2*half_width of one of
  // them would only rediscover the same band. |Δdiag| is invariant under
  // swapping the sequences (both diagonals negate), which is what keeps
  // the screen orientation-symmetric.
  const std::int64_t merge_width =
      2 * static_cast<std::int64_t>(std::max(0, bucket_half_width));
  std::int64_t done_diags[8];
  int n_done = 0;

  for (const Seed& s : seeds) {
    const std::int64_t d =
        static_cast<std::int64_t>(s.r) - static_cast<std::int64_t>(s.q);
    bool dup = false;
    for (int i = 0; i < n_done; ++i) {
      if (std::llabs(done_diags[i] - d) <= merge_width) {
        dup = true;
        break;
      }
    }
    if (dup) continue;
    if (n_done < 8) done_diags[n_done++] = d;

    // Valid q-range of diagonal d: q in [max(0, -d), min(nq, nr - d)).
    const std::int64_t q_lo = std::max<std::int64_t>(0, -d);
    const std::int64_t q_hi = std::min<std::int64_t>(nq, nr - d);
    if (q_lo >= q_hi) continue;  // diagonal misses the sequences entirely
    ++out.seeds_extended;
    const std::int64_t sq =
        std::clamp(static_cast<std::int64_t>(s.q), q_lo, q_hi - 1);

    // Score the (clamped) seed window, then extend right and left with the
    // same x-drop rule as align/xdrop.cpp — but ungapped only, so the whole
    // screen is O(extension length) with no DP rows.
    int run = 0;
    std::int64_t iq = sq;
    const std::int64_t seed_end =
        std::min(sq + static_cast<std::int64_t>(seed_len), q_hi);
    for (; iq < seed_end; ++iq) {
      run += scoring.score_chars(q[static_cast<std::size_t>(iq)],
                                 r[static_cast<std::size_t>(iq + d)]);
      ++out.cells;
    }
    int best = run;
    for (; iq < q_hi; ++iq) {
      run += scoring.score_chars(q[static_cast<std::size_t>(iq)],
                                 r[static_cast<std::size_t>(iq + d)]);
      ++out.cells;
      if (run > best) best = run;
      if (run < best - xdrop) break;
    }
    run = best;
    int best_total = best;
    for (std::int64_t jq = sq - 1; jq >= q_lo; --jq) {
      run += scoring.score_chars(q[static_cast<std::size_t>(jq)],
                                 r[static_cast<std::size_t>(jq + d)]);
      ++out.cells;
      if (run > best_total) best_total = run;
      if (run < best_total - xdrop) break;
    }
    out.score = std::max(out.score, best_total);
  }
  return out;
}

bool tier0_keep(std::string_view q, std::string_view r,
                std::span<const Seed> seeds, std::uint32_t shared_kmers,
                int sketch_overlap, const BatchAligner& aligner,
                const CascadeOptions& opt, TierStats& ts) {
  ++ts.pairs_in;
  bool keep = shared_kmers >= opt.tier0_min_count;
  if (keep && opt.tier0_min_sketch_overlap > 0 && sketch_overlap >= 0) {
    keep = sketch_overlap >= opt.tier0_min_sketch_overlap;
  }
  if (keep && opt.tier0_min_ungapped_score > kCascadeNoCutoff) {
    const auto& c = aligner.config();
    const UngappedExtension ext =
        ungapped_diag_extend(q, r, seeds, c.seed_len, aligner.scoring(),
                             c.xdrop, c.band_half_width);
    ts.cells += ext.cells;
    keep = ext.score >= opt.tier0_min_ungapped_score;
  }
  if (keep) {
    ++ts.pairs_out;
  } else {
    ++ts.rejects;
  }
  return keep;
}

bool tier1_keep(std::string_view q, std::string_view r, const AlignTask& task,
                const BatchAligner& aligner, const CascadeOptions& opt,
                TierStats& ts) {
  ++ts.pairs_in;
  const AlignResult probe = aligner.align_pair(q, r, task, opt.tier1_kind);
  ts.cells += probe.cells;
  bool keep = probe.score >= opt.tier1_min_score;
  if (keep && opt.tier1_min_cov > 0.0) {
    keep = probe.coverage(q.size(), r.size()) >= opt.tier1_min_cov;
  }
  if (keep) {
    ++ts.pairs_out;
  } else {
    ++ts.rejects;
  }
  return keep;
}

bool cascade_keep(std::string_view q, std::string_view r,
                  const AlignTask& task, std::uint32_t shared_kmers,
                  std::span<const Seed> seeds, int sketch_overlap,
                  const BatchAligner& aligner, const CascadeOptions& opt,
                  CascadeStats& stats) {
  if (!opt.any()) return true;
  if (opt.tier0_enabled &&
      !tier0_keep(q, r, seeds, shared_kmers, sketch_overlap, aligner, opt,
                  stats.tier0)) {
    return false;
  }
  if (opt.tier1_enabled &&
      !tier1_keep(q, r, task, aligner, opt, stats.tier1)) {
    return false;
  }
  return true;
}

}  // namespace pastis::align
