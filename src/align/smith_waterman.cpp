#include "align/smith_waterman.hpp"

#include <algorithm>
#include <vector>

namespace pastis::align {

namespace {

/// Path statistics carried alongside each DP state so identity/coverage can
/// be computed without a traceback matrix.
struct PathStat {
  std::uint32_t beg_q = 0;
  std::uint32_t beg_r = 0;
  std::uint32_t matches = 0;
  std::uint32_t len = 0;
};

std::vector<std::uint8_t> encode_seq(std::string_view s) {
  std::vector<std::uint8_t> out(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) out[i] = Scoring::encode(s[i]);
  return out;
}

}  // namespace

AlignResult smith_waterman(std::string_view query, std::string_view reference,
                           const Scoring& scoring) {
  AlignResult res;
  const std::size_t m = query.size();
  const std::size_t n = reference.size();
  res.cells = static_cast<std::uint64_t>(m) * n;
  if (m == 0 || n == 0) return res;

  const auto q = encode_seq(query);
  const auto r = encode_seq(reference);
  const int go = scoring.gap_open() + scoring.gap_extend();  // first residue
  const int ge = scoring.gap_extend();                       // each further

  constexpr int kNegInf = -(1 << 28);
  std::vector<int> h_prev(n + 1, 0), h_cur(n + 1, 0);
  std::vector<int> f_prev(n + 1, kNegInf), f_cur(n + 1, kNegInf);
  std::vector<PathStat> sh_prev(n + 1), sh_cur(n + 1);
  std::vector<PathStat> sf_prev(n + 1), sf_cur(n + 1);

  int best = 0;
  std::uint32_t best_i = 0, best_j = 0;
  PathStat best_stat;

  for (std::size_t i = 1; i <= m; ++i) {
    h_cur[0] = 0;
    int e_score = kNegInf;
    PathStat e_stat;
    const std::uint8_t qi = q[i - 1];

    for (std::size_t j = 1; j <= n; ++j) {
      // E: gap consuming the reference (left transitions within this row).
      const int e_open = h_cur[j - 1] - go;
      const int e_ext = e_score - ge;
      if (e_open >= e_ext) {
        e_score = e_open;
        e_stat = sh_cur[j - 1];
      } else {
        e_score = e_ext;
      }
      ++e_stat.len;

      // F: gap consuming the query (up transitions from the previous row).
      const int f_open = h_prev[j] - go;
      const int f_ext = f_prev[j] - ge;
      PathStat f_stat;
      int f_score;
      if (f_open >= f_ext) {
        f_score = f_open;
        f_stat = sh_prev[j];
      } else {
        f_score = f_ext;
        f_stat = sf_prev[j];
      }
      ++f_stat.len;
      f_cur[j] = f_score;
      sf_cur[j] = f_stat;

      // Diagonal: substitution (or fresh start if the previous H was 0).
      const bool is_match = qi == r[j - 1];
      const int diag =
          h_prev[j - 1] + scoring.score(qi, r[j - 1]);
      PathStat d_stat;
      if (h_prev[j - 1] > 0) {
        d_stat = sh_prev[j - 1];
      } else {
        d_stat.beg_q = static_cast<std::uint32_t>(i - 1);
        d_stat.beg_r = static_cast<std::uint32_t>(j - 1);
      }
      d_stat.matches += is_match ? 1u : 0u;
      ++d_stat.len;

      // H: deterministic tie-break diag > up (F) > left (E) > restart.
      int h = diag;
      PathStat s = d_stat;
      if (f_score > h) {
        h = f_score;
        s = f_stat;
      }
      if (e_score > h) {
        h = e_score;
        s = e_stat;
      }
      if (h <= 0) {
        h = 0;
        s = PathStat{};
      }
      h_cur[j] = h;
      sh_cur[j] = s;

      if (h > best) {
        best = h;
        best_i = static_cast<std::uint32_t>(i);
        best_j = static_cast<std::uint32_t>(j);
        best_stat = s;
      }
    }
    std::swap(h_prev, h_cur);
    std::swap(f_prev, f_cur);
    std::swap(sh_prev, sh_cur);
    std::swap(sf_prev, sf_cur);
  }

  res.score = best;
  if (best > 0) {
    res.beg_q = best_stat.beg_q;
    res.beg_r = best_stat.beg_r;
    res.end_q = best_i;
    res.end_r = best_j;
    res.matches = best_stat.matches;
    res.align_len = best_stat.len;
  }
  return res;
}

int smith_waterman_score(std::string_view query, std::string_view reference,
                         const Scoring& scoring) {
  const std::size_t m = query.size();
  const std::size_t n = reference.size();
  if (m == 0 || n == 0) return 0;

  const auto q = encode_seq(query);
  const auto r = encode_seq(reference);
  const int go = scoring.gap_open() + scoring.gap_extend();
  const int ge = scoring.gap_extend();

  constexpr int kNegInf = -(1 << 28);
  std::vector<int> h_prev(n + 1, 0), h_cur(n + 1, 0);
  std::vector<int> f_row(n + 1, kNegInf);

  int best = 0;
  for (std::size_t i = 1; i <= m; ++i) {
    int e_score = kNegInf;
    h_cur[0] = 0;
    const std::uint8_t qi = q[i - 1];
    for (std::size_t j = 1; j <= n; ++j) {
      e_score = std::max(h_cur[j - 1] - go, e_score - ge);
      f_row[j] = std::max(h_prev[j] - go, f_row[j] - ge);
      const int diag = h_prev[j - 1] + scoring.score(qi, r[j - 1]);
      int h = std::max({0, diag, f_row[j], e_score});
      h_cur[j] = h;
      best = std::max(best, h);
    }
    std::swap(h_prev, h_cur);
  }
  return best;
}

}  // namespace pastis::align
