// Smith-Waterman local alignment with affine gaps (Gotoh's algorithm).
//
// This is the CPU-exact equivalent of the ADEPT GPU kernel the paper runs:
// the full dynamic-programming matrix is computed (no heuristics), which is
// what makes "cell updates per second" a meaningful metric (§VII). Besides
// the score we carry per-cell path statistics (begin coordinates, matches,
// alignment columns) through the recurrence in O(n) memory so that identity
// (ANI) and coverage can be thresholded without a traceback matrix.
#pragma once

#include <cstdint>
#include <string_view>

#include "align/scoring.hpp"

namespace pastis::align {

/// Outcome of one pairwise local alignment.
struct AlignResult {
  int score = 0;
  // Half-open alignment windows [beg, end) on query and reference.
  std::uint32_t beg_q = 0, end_q = 0;
  std::uint32_t beg_r = 0, end_r = 0;
  std::uint32_t matches = 0;     // identical aligned residue pairs
  std::uint32_t align_len = 0;   // alignment columns (incl. gaps)
  std::uint64_t cells = 0;       // DP cells updated (CUPS accounting)

  /// Sequence identity of the aligned region; the paper's "ANI" filter
  /// (threshold 0.30 in Table IV) applies to this value.
  [[nodiscard]] double identity() const {
    return align_len == 0 ? 0.0
                          : static_cast<double>(matches) /
                                static_cast<double>(align_len);
  }

  /// Coverage of a sequence of length `len` by its aligned window.
  [[nodiscard]] static double coverage_of(std::uint32_t beg, std::uint32_t end,
                                          std::size_t len) {
    return len == 0 ? 0.0
                    : static_cast<double>(end - beg) /
                          static_cast<double>(len);
  }

  /// Short coverage: the smaller of the two per-sequence coverages. PASTIS
  /// requires this to clear the threshold (0.70 in Table IV) so that neither
  /// sequence is matched by only a small fragment.
  [[nodiscard]] double coverage(std::size_t len_q, std::size_t len_r) const {
    const double cq = coverage_of(beg_q, end_q, len_q);
    const double cr = coverage_of(beg_r, end_r, len_r);
    return cq < cr ? cq : cr;
  }
};

/// Full Smith-Waterman/Gotoh. Sequences are ASCII amino-acid strings.
/// Deterministic tie-breaking (diagonal > up > left > restart) makes results
/// identical across any parallel decomposition.
[[nodiscard]] AlignResult smith_waterman(std::string_view query,
                                         std::string_view reference,
                                         const Scoring& scoring);

/// Score-only variant (no path statistics); ~2x faster, used by the
/// substitute-k-mer neighbour generator and by benchmarks.
[[nodiscard]] int smith_waterman_score(std::string_view query,
                                       std::string_view reference,
                                       const Scoring& scoring);

}  // namespace pastis::align
