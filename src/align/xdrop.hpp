// Seeded ungapped x-drop extension (BLAST-style stage 2).
//
// PASTIS's SeqAn-backed configurations support seed-and-extend alignment;
// this is the light-weight member of that family: starting from a shared
// k-mer seed the alignment is extended left and right until the running
// score drops more than `xdrop` below the running maximum. No gaps are
// introduced, so coverage/identity are exact for the extended window.
#pragma once

#include <cstdint>
#include <string_view>

#include "align/smith_waterman.hpp"

namespace pastis::align {

/// Extends the seed q[seed_q .. seed_q+k) == r[seed_r .. seed_r+k).
/// Returns the best-scoring extension window as an AlignResult (gapless:
/// align_len == end_q - beg_q == end_r - beg_r).
[[nodiscard]] AlignResult xdrop_extend(std::string_view query,
                                       std::string_view reference,
                                       std::uint32_t seed_q,
                                       std::uint32_t seed_r,
                                       std::uint32_t seed_len,
                                       const Scoring& scoring, int xdrop);

}  // namespace pastis::align
