#include "align/xdrop.hpp"

#include <algorithm>

namespace pastis::align {

AlignResult xdrop_extend(std::string_view query, std::string_view reference,
                         std::uint32_t seed_q, std::uint32_t seed_r,
                         std::uint32_t seed_len, const Scoring& scoring,
                         int xdrop) {
  AlignResult res;
  if (seed_q + seed_len > query.size() || seed_r + seed_len > reference.size()) {
    return res;  // malformed seed
  }

  // Score of the seed itself.
  int score = 0;
  std::uint32_t matches = 0;
  for (std::uint32_t t = 0; t < seed_len; ++t) {
    score += scoring.score_chars(query[seed_q + t], reference[seed_r + t]);
    matches += query[seed_q + t] == reference[seed_r + t] ? 1u : 0u;
  }

  // Extend right of the seed.
  int run = score, best = score;
  std::uint32_t best_right = seed_q + seed_len;  // exclusive end on query
  std::uint32_t run_matches = matches, best_matches_r = matches;
  std::uint64_t cells = seed_len;
  {
    std::uint32_t iq = seed_q + seed_len, ir = seed_r + seed_len;
    while (iq < query.size() && ir < reference.size()) {
      ++cells;
      run += scoring.score_chars(query[iq], reference[ir]);
      run_matches += query[iq] == reference[ir] ? 1u : 0u;
      ++iq;
      ++ir;
      if (run > best) {
        best = run;
        best_right = iq;
        best_matches_r = run_matches;
      }
      if (run < best - xdrop) break;
    }
  }

  // Extend left of the seed, starting from the best right extension.
  int run_l = best, best_total = best;
  std::uint32_t best_left = seed_q;  // inclusive start on query
  std::uint32_t run_matches_l = best_matches_r, best_matches = best_matches_r;
  {
    std::int64_t iq = static_cast<std::int64_t>(seed_q) - 1;
    std::int64_t ir = static_cast<std::int64_t>(seed_r) - 1;
    while (iq >= 0 && ir >= 0) {
      ++cells;
      run_l += scoring.score_chars(query[static_cast<std::size_t>(iq)],
                                   reference[static_cast<std::size_t>(ir)]);
      run_matches_l +=
          query[static_cast<std::size_t>(iq)] ==
                  reference[static_cast<std::size_t>(ir)]
              ? 1u
              : 0u;
      if (run_l > best_total) {
        best_total = run_l;
        best_left = static_cast<std::uint32_t>(iq);
        best_matches = run_matches_l;
      }
      if (run_l < best_total - xdrop) break;
      --iq;
      --ir;
    }
  }

  const std::uint32_t span = best_right - best_left;
  res.score = best_total;
  res.beg_q = best_left;
  res.end_q = best_right;
  res.beg_r = seed_r - (seed_q - best_left);
  res.end_r = res.beg_r + span;
  res.matches = best_matches;
  res.align_len = span;
  res.cells = cells;
  return res;
}

}  // namespace pastis::align
