#include "align/batch.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pastis::align {

AlignResult BatchAligner::run_full_sw(std::string_view q, std::string_view r,
                                      const AlignTask&) const {
  return smith_waterman(q, r, scoring_);
}

AlignResult BatchAligner::run_banded(std::string_view q, std::string_view r,
                                     const AlignTask& task) const {
  const int diag =
      static_cast<int>(task.seed_r) - static_cast<int>(task.seed_q);
  return banded_smith_waterman(q, r, scoring_, diag, config_.band_half_width);
}

AlignResult BatchAligner::run_xdrop(std::string_view q, std::string_view r,
                                    const AlignTask& task) const {
  return xdrop_extend(q, r, task.seed_q, task.seed_r, config_.seed_len,
                      scoring_, config_.xdrop);
}

const BatchAligner::KernelFn BatchAligner::kKernelTable[3] = {
    &BatchAligner::run_full_sw,  // AlignKind::kFullSW
    &BatchAligner::run_banded,   // AlignKind::kBanded
    &BatchAligner::run_xdrop,    // AlignKind::kXDrop
};

AlignResult BatchAligner::align_pair(std::string_view q, std::string_view r,
                                     const AlignTask& task,
                                     AlignKind kind) const {
  return (this->*kKernelTable[static_cast<int>(kind)])(q, r, task);
}

void BatchAligner::assign_lanes(const SeqAccessor& seq_of,
                                std::span<const AlignTask> tasks,
                                LaneScratch& scratch) const {
  const int devices = std::max(1, config_.devices);
  scratch.lanes.assign(tasks.size(), 0);
  scratch.load.assign(static_cast<std::size_t>(devices), 0);
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    int best = 0;
    for (int d = 1; d < devices; ++d) {
      if (scratch.load[static_cast<std::size_t>(d)] <
          scratch.load[static_cast<std::size_t>(best)]) {
        best = d;
      }
    }
    scratch.lanes[t] = best;
    scratch.load[static_cast<std::size_t>(best)] +=
        static_cast<std::uint64_t>(seq_of(tasks[t].q_id).size()) *
        static_cast<std::uint64_t>(seq_of(tasks[t].r_id).size());
  }
}

std::vector<int> BatchAligner::assign_lanes(
    const SeqAccessor& seq_of, std::span<const AlignTask> tasks) const {
  LaneScratch scratch;
  assign_lanes(seq_of, tasks, scratch);
  return std::move(scratch.lanes);
}

BatchStats BatchAligner::stats_for(const SeqAccessor& seq_of,
                                   std::span<const AlignTask> tasks,
                                   std::span<const AlignResult> results) const {
  LaneScratch scratch;
  return stats_for(seq_of, tasks, results, scratch);
}

BatchStats BatchAligner::stats_for(const SeqAccessor& seq_of,
                                   std::span<const AlignTask> tasks,
                                   std::span<const AlignResult> results,
                                   LaneScratch& scratch) const {
  assign_lanes(seq_of, tasks, scratch);
  return stats_with(seq_of, tasks, results,
                    std::span<const int>(scratch.lanes), scratch.device_cells,
                    scratch.device_pairs);
}

BatchStats BatchAligner::stats_for(const SeqAccessor& seq_of,
                                   std::span<const AlignTask> tasks,
                                   std::span<const AlignResult> results,
                                   std::span<const int> lanes) const {
  std::vector<std::uint64_t> device_cells;
  std::vector<std::uint64_t> device_pairs;
  return stats_with(seq_of, tasks, results, lanes, device_cells, device_pairs);
}

BatchStats BatchAligner::stats_with(
    const SeqAccessor& seq_of, std::span<const AlignTask> tasks,
    std::span<const AlignResult> results, std::span<const int> lanes,
    std::vector<std::uint64_t>& device_cells,
    std::vector<std::uint64_t>& device_pairs) const {
  const int devices = std::max(1, config_.devices);
  device_cells.assign(static_cast<std::size_t>(devices), 0);
  device_pairs.assign(static_cast<std::size_t>(devices), 0);
  BatchStats stats;
  for (std::size_t t = 0; t < results.size(); ++t) {
    const int lane = lanes[t];
    device_cells[lane] += results[t].cells;
    ++device_pairs[lane];
    stats.cells += results[t].cells;
    stats.h2d_bytes += seq_of(tasks[t].q_id).size() +
                       seq_of(tasks[t].r_id).size();
  }
  std::uint64_t max_cells = 0, max_pairs = 0;
  for (int d = 0; d < devices; ++d) {
    max_cells = std::max(max_cells, device_cells[d]);
    max_pairs = std::max(max_pairs, device_pairs[d]);
  }
  stats.pairs = results.size();
  stats.kernel_seconds =
      static_cast<double>(max_cells) / config_.cups_per_device;
  stats.packing_seconds =
      static_cast<double>(max_pairs) * config_.pack_seconds_per_pair;
  if (config_.telemetry.metrics != nullptr) {
    auto& m = *config_.telemetry.metrics;
    m.counter("align.pairs_total").add(static_cast<double>(stats.pairs));
    m.counter("align.cells_total").add(static_cast<double>(stats.cells));
    for (int d = 0; d < devices; ++d) {
      const std::string lane = "align.lane" + std::to_string(d);
      m.counter(lane + ".cells_total")
          .add(static_cast<double>(device_cells[static_cast<std::size_t>(d)]));
      m.counter(lane + ".pairs_total")
          .add(static_cast<double>(device_pairs[static_cast<std::size_t>(d)]));
      // The Fig. 7 presentation of per-device balance, one sample per lane
      // per batch.
      m.min_avg_max("align.lane_cells")
          .add(static_cast<double>(device_cells[static_cast<std::size_t>(d)]));
    }
  }
  return stats;
}

std::span<const AlignResult> BatchAligner::align_batch(
    const SeqAccessor& seq_of, std::span<const AlignTask> tasks,
    AlignWorkspace& ws, BatchStats* stats, util::ThreadPool* pool) const {
  ws.results.assign(tasks.size(), AlignResult{});
  const int devices = std::max(1, config_.devices);

  // Lanes are computed exactly once per batch and shared between the run
  // and the device-model accounting below.
  assign_lanes(seq_of, tasks, ws.lanes);
  const auto& lanes = ws.lanes.lanes;
  const obs::Telemetry& telem = config_.telemetry;
  auto run_lane = [&](int lane) {
    // ADEPT distributes alignments across the node's devices; the driver
    // balances per-GPU batches by DP size (see assign_lanes).
    const auto t0 = telem.metrics != nullptr ? std::chrono::steady_clock::now()
                                             : std::chrono::steady_clock::time_point{};
    std::uint64_t lane_cells = 0;
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      if (lanes[t] != lane) continue;
      const AlignTask& task = tasks[t];
      ws.results[t] =
          align_pair(seq_of(task.q_id), seq_of(task.r_id), task, config_.kind);
      lane_cells += ws.results[t].cells;
    }
    if (telem.metrics != nullptr && lane_cells > 0) {
      const double s = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
      if (s > 0.0) {
        // Measured host-side DP throughput of this driver lane.
        telem.metrics
            ->histogram("align.lane" + std::to_string(lane) +
                        ".cells_per_second",
                        std::array{1e6, 1e7, 1e8, 1e9, 1e10, 1e11})
            .observe(static_cast<double>(lane_cells) / s);
      }
    }
  };

  {
    obs::Span span(telem.tracer, "align.batch");
    span.arg("pairs", static_cast<double>(tasks.size()));
    if (pool != nullptr && tasks.size() > 1) {
      pool->parallel_for(static_cast<std::size_t>(devices),
                         [&](std::size_t lane) { run_lane(static_cast<int>(lane)); });
    } else {
      for (int lane = 0; lane < devices; ++lane) run_lane(lane);
    }
  }

  if (stats != nullptr) {
    stats->merge(stats_with(seq_of, tasks, ws.results,
                            std::span<const int>(lanes),
                            ws.lanes.device_cells, ws.lanes.device_pairs));
  }
  return ws.results;
}

std::vector<AlignResult> BatchAligner::align_batch(
    const SeqAccessor& seq_of, std::span<const AlignTask> tasks,
    BatchStats* stats, util::ThreadPool* pool) const {
  AlignWorkspace ws;
  align_batch(seq_of, tasks, ws, stats, pool);
  return std::move(ws.results);
}

}  // namespace pastis::align
