#include "align/batch.hpp"

#include <algorithm>

namespace pastis::align {

AlignResult BatchAligner::align_one(std::string_view q, std::string_view r,
                                    const AlignTask& task) const {
  switch (config_.kind) {
    case AlignKind::kFullSW:
      return smith_waterman(q, r, scoring_);
    case AlignKind::kBanded: {
      const int diag = static_cast<int>(task.seed_r) -
                       static_cast<int>(task.seed_q);
      return banded_smith_waterman(q, r, scoring_, diag,
                                   config_.band_half_width);
    }
    case AlignKind::kXDrop:
      return xdrop_extend(q, r, task.seed_q, task.seed_r, config_.seed_len,
                          scoring_, config_.xdrop);
  }
  return {};
}

std::vector<int> BatchAligner::assign_lanes(
    const SeqAccessor& seq_of, std::span<const AlignTask> tasks) const {
  const int devices = std::max(1, config_.devices);
  std::vector<int> lanes(tasks.size(), 0);
  std::vector<std::uint64_t> load(static_cast<std::size_t>(devices), 0);
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    int best = 0;
    for (int d = 1; d < devices; ++d) {
      if (load[static_cast<std::size_t>(d)] <
          load[static_cast<std::size_t>(best)]) {
        best = d;
      }
    }
    lanes[t] = best;
    load[static_cast<std::size_t>(best)] +=
        static_cast<std::uint64_t>(seq_of(tasks[t].q_id).size()) *
        static_cast<std::uint64_t>(seq_of(tasks[t].r_id).size());
  }
  return lanes;
}

BatchStats BatchAligner::stats_for(const SeqAccessor& seq_of,
                                   std::span<const AlignTask> tasks,
                                   std::span<const AlignResult> results) const {
  return stats_for(seq_of, tasks, results, assign_lanes(seq_of, tasks));
}

BatchStats BatchAligner::stats_for(const SeqAccessor& seq_of,
                                   std::span<const AlignTask> tasks,
                                   std::span<const AlignResult> results,
                                   std::span<const int> lanes) const {
  const int devices = std::max(1, config_.devices);
  std::vector<std::uint64_t> device_cells(devices, 0);
  std::vector<std::uint64_t> device_pairs(devices, 0);
  BatchStats stats;
  for (std::size_t t = 0; t < results.size(); ++t) {
    const int lane = lanes[t];
    device_cells[lane] += results[t].cells;
    ++device_pairs[lane];
    stats.cells += results[t].cells;
    stats.h2d_bytes += seq_of(tasks[t].q_id).size() +
                       seq_of(tasks[t].r_id).size();
  }
  std::uint64_t max_cells = 0, max_pairs = 0;
  for (int d = 0; d < devices; ++d) {
    max_cells = std::max(max_cells, device_cells[d]);
    max_pairs = std::max(max_pairs, device_pairs[d]);
  }
  stats.pairs = results.size();
  stats.kernel_seconds =
      static_cast<double>(max_cells) / config_.cups_per_device;
  stats.packing_seconds =
      static_cast<double>(max_pairs) * config_.pack_seconds_per_pair;
  return stats;
}

std::vector<AlignResult> BatchAligner::align_batch(
    const SeqAccessor& seq_of, std::span<const AlignTask> tasks,
    BatchStats* stats, util::ThreadPool* pool) const {
  std::vector<AlignResult> results(tasks.size());
  const int devices = std::max(1, config_.devices);

  // Lanes are computed exactly once per batch and shared between the run
  // and the device-model accounting below.
  const auto lanes = assign_lanes(seq_of, tasks);
  auto run_lane = [&](int lane) {
    // ADEPT distributes alignments across the node's devices; the driver
    // balances per-GPU batches by DP size (see assign_lanes).
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      if (lanes[t] != lane) continue;
      const AlignTask& task = tasks[t];
      results[t] = align_one(seq_of(task.q_id), seq_of(task.r_id), task);
    }
  };

  if (pool != nullptr && tasks.size() > 1) {
    pool->parallel_for(static_cast<std::size_t>(devices),
                       [&](std::size_t lane) { run_lane(static_cast<int>(lane)); });
  } else {
    for (int lane = 0; lane < devices; ++lane) run_lane(lane);
  }

  if (stats != nullptr) {
    stats->merge(stats_for(seq_of, tasks, results, lanes));
  }
  return results;
}

}  // namespace pastis::align
