#include "obs/trace.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

namespace pastis::obs {

namespace {

void append_json_string(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void append_number(std::ostringstream& os, double v) {
  if (!std::isfinite(v)) {
    os << 0;
    return;
  }
  std::ostringstream n;
  n.precision(17);
  n << v;
  os << n.str();
}

}  // namespace

Tracer::Tracer() : origin_(std::chrono::steady_clock::now()) {}

double Tracer::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - origin_)
      .count();
}

int Tracer::thread_track() {
  // Caller holds mutex_.
  const auto id = std::this_thread::get_id();
  const auto it = thread_ids_.find(id);
  if (it != thread_ids_.end()) return it->second;
  const int track = static_cast<int>(thread_ids_.size());
  thread_ids_.emplace(id, track);
  return track;
}

void Tracer::record_measured(std::string name, double ts_us, double dur_us,
                             std::vector<TraceArg> args) {
  std::lock_guard lock(mutex_);
  events_.push_back({std::move(name), kMeasuredPid, thread_track(), ts_us,
                     dur_us, std::move(args)});
}

void Tracer::record_modeled(std::string name, int rank, double t0_s,
                            double t1_s, std::vector<TraceArg> args) {
  const double ts_us = t0_s * 1e6;
  const double dur_us = (t1_s - t0_s) * 1e6;
  std::lock_guard lock(mutex_);
  events_.push_back(
      {std::move(name), kModeledPid, rank, ts_us, dur_us, std::move(args)});
  max_rank_track_ = std::max(max_rank_track_, rank);
  modeled_end_us_ = std::max(modeled_end_us_, ts_us + dur_us);
}

std::size_t Tracer::event_count() const {
  std::lock_guard lock(mutex_);
  return events_.size();
}

double Tracer::modeled_end_seconds() const {
  std::lock_guard lock(mutex_);
  return modeled_end_us_ / 1e6;
}

std::string Tracer::to_json() const {
  std::lock_guard lock(mutex_);
  std::ostringstream os;
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";

  bool first = true;
  const auto meta = [&](int pid, int tid, const char* what,
                        const std::string& value) {
    os << (first ? "" : ",\n");
    first = false;
    os << "{\"name\": \"" << what << "\", \"ph\": \"M\", \"pid\": " << pid;
    if (tid >= 0) os << ", \"tid\": " << tid;
    os << ", \"args\": {\"name\": ";
    append_json_string(os, value);
    os << "}}";
  };
  meta(kMeasuredPid, -1, "process_name", "measured (host threads)");
  meta(kModeledPid, -1, "process_name", "modeled (simulated ranks)");
  for (const auto& [id, track] : thread_ids_) {
    (void)id;
    meta(kMeasuredPid, track, "thread_name",
         "host thread " + std::to_string(track));
  }
  for (int r = 0; r <= max_rank_track_; ++r) {
    meta(kModeledPid, r, "thread_name", "rank " + std::to_string(r));
  }

  for (const auto& e : events_) {
    os << (first ? "" : ",\n");
    first = false;
    os << "{\"name\": ";
    append_json_string(os, e.name);
    os << ", \"ph\": \"X\", \"cat\": "
       << (e.pid == kMeasuredPid ? "\"measured\"" : "\"modeled\"")
       << ", \"pid\": " << e.pid << ", \"tid\": " << e.tid << ", \"ts\": ";
    append_number(os, e.ts_us);
    os << ", \"dur\": ";
    append_number(os, e.dur_us);
    if (!e.args.empty()) {
      os << ", \"args\": {";
      for (std::size_t a = 0; a < e.args.size(); ++a) {
        if (a > 0) os << ", ";
        append_json_string(os, e.args[a].key);
        os << ": ";
        append_number(os, e.args[a].value);
      }
      os << "}";
    }
    os << "}";
  }
  os << "\n]}\n";
  return os.str();
}

void Tracer::write(const std::string& path) const {
  std::ofstream out(path);
  out << to_json();
}

}  // namespace pastis::obs
