// Thread-safe metrics registry: named counters, gauges, fixed-bucket
// latency histograms (p50/p95/p99) and min/avg/max accumulators (the
// paper's load-imbalance presentation, util::MinAvgMax).
//
// Design constraints (from the serving tier this feeds):
//   * cheap when off — instrumented code holds an obs::Telemetry whose
//     metrics pointer is null by default; every sample site is one branch;
//   * cheap when on — counters/gauges are lock-free atomics; histograms
//     and min/avg/max take a per-metric mutex (sampled per batch /
//     iteration / stage, never per nonzero);
//   * snapshottable mid-run — snapshot() can be polled from any thread
//     while samples keep landing (a soak bench polling its serving loop);
//   * stable export — to_json() emits the versioned `pastis.metrics.v1`
//     schema bench_common consumes, to_prometheus_text() the text
//     exposition format. Empty histograms / accumulators export null
//     min/max/quantiles, never ±infinity (JSON has no Infinity).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "util/stats.hpp"

namespace pastis::obs {

/// Monotonically increasing double (Prometheus counter semantics; doubles
/// so byte- and second-valued totals share one type — integral totals stay
/// exact up to 2^53).
class Counter {
 public:
  void add(double d = 1.0) { v_.fetch_add(d, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double d) { v_.store(d, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram with exact min/max/sum/count. Quantiles are
/// interpolated within the landing bucket and clamped to the observed
/// min/max, so p50/p95/p99 are always inside the sampled range.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bucket_bounds);

  void observe(double v);

  struct Snapshot {
    std::vector<double> bounds;        // upper bounds; +inf bucket implicit
    std::vector<std::uint64_t> counts; // bounds.size() + 1 entries
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  // meaningless when count == 0 (exporters emit null)
    double max = 0.0;

    [[nodiscard]] double quantile(double q) const;
  };
  [[nodiscard]] Snapshot snapshot() const;

  /// Default latency bucketing: decades from 1 µs to 100 s.
  [[nodiscard]] static std::vector<double> default_latency_bounds();

 private:
  mutable std::mutex mutex_;
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mutex-wrapped util::MinAvgMax (the Fig. 7 / Table IV presentation).
class MinAvgMaxMetric {
 public:
  void add(double v) {
    std::lock_guard lock(mutex_);
    acc_.add(v);
  }
  void merge(const util::MinAvgMax& o) {
    std::lock_guard lock(mutex_);
    acc_.merge(o);
  }
  [[nodiscard]] util::MinAvgMax snapshot() const {
    std::lock_guard lock(mutex_);
    return acc_;
  }

 private:
  mutable std::mutex mutex_;
  util::MinAvgMax acc_;
};

/// Point-in-time copy of every registered metric.
struct MetricsSnapshot {
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram::Snapshot> histograms;
  std::map<std::string, util::MinAvgMax> min_avg_max;
};

class MetricsRegistry {
 public:
  /// Lookup-or-create; returned references stay valid for the registry's
  /// lifetime (metrics are never removed). All thread-safe.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` applies only on first creation (empty = default latency
  /// decades); later lookups by the same name ignore it.
  Histogram& histogram(const std::string& name,
                       std::span<const double> bounds = {});
  MinAvgMaxMetric& min_avg_max(const std::string& name);

  /// Consistent-enough copy for mid-run polling: each metric is copied
  /// under its own lock while samples keep landing elsewhere.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Versioned machine-readable export (`pastis.metrics.v1`): empty
  /// histograms / accumulators get null min/max/quantiles.
  [[nodiscard]] std::string to_json() const;
  void write_json(const std::string& path) const;

  /// Prometheus text exposition (names sanitized to [a-zA-Z0-9_:]).
  [[nodiscard]] std::string to_prometheus_text() const;

 private:
  mutable std::mutex mutex_;  // guards the maps, not the metrics
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<MinAvgMaxMetric>> min_avg_max_;
};

}  // namespace pastis::obs
