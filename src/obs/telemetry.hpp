// Telemetry injection point: a pair of non-owning sink pointers threaded
// through PastisConfig (and the option structs that inherit from it) into
// every instrumented layer. Both sinks default to null — the telemetry-off
// configuration — and every sample site guards on that with a single
// branch, so disabled runs stay bit-identical to (and within noise of) the
// untelemetered code. This header is deliberately forward-declaration-only
// so config headers can include it without pulling in the registry/tracer
// machinery.
#pragma once

namespace pastis::obs {

class MetricsRegistry;
class Tracer;

struct Telemetry {
  /// Counters / gauges / latency histograms / min-avg-max accumulators
  /// (thread-safe, snapshottable mid-run). Null disables metric sampling.
  MetricsRegistry* metrics = nullptr;
  /// Chrome-trace-event span recorder (measured thread tracks + modeled
  /// rank tracks). Null disables span recording.
  Tracer* tracer = nullptr;

  [[nodiscard]] bool enabled() const {
    return metrics != nullptr || tracer != nullptr;
  }
};

}  // namespace pastis::obs
