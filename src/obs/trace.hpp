// Stage/span tracing with Chrome trace-event JSON export.
//
// Two kinds of time exist in this codebase (util/timer.hpp): measured
// wall-clock of the host process, and modeled seconds charged against the
// MachineModel. The tracer keeps them on disjoint tracks so they can never
// be confused in a viewer:
//   * pid 1 "measured (host threads)" — one track per worker thread; spans
//     are real wall-clock intervals (Span RAII), so the streaming
//     executor's cross-stage overlap (block b+1's discovery running while
//     block b aligns) is literally visible;
//   * pid 2 "modeled (simulated ranks)" — one track per simulated rank;
//     spans are modeled-second intervals placed by the
//     exec::OverlapTimeline recurrence, so the §VI-C pipeline schedule
//     (and failover / imbalance across ranks) can be read off the same
//     timeline.
// Export is the Chrome trace-event JSON array format: open the file in
// chrome://tracing or https://ui.perfetto.dev. All methods are
// thread-safe; recording with a null Tracer* (via obs::Span) is a no-op.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

namespace pastis::obs {

/// One numeric span argument (rendered in the viewer's args pane).
struct TraceArg {
  std::string key;
  double value = 0.0;
};

class Tracer {
 public:
  /// Track (pid) constants of the two time domains.
  static constexpr int kMeasuredPid = 1;
  static constexpr int kModeledPid = 2;

  Tracer();

  /// Microseconds of measured wall-clock since the tracer was constructed.
  [[nodiscard]] double now_us() const;

  /// Records one complete ("ph":"X") measured span on the calling thread's
  /// track. Timestamps come from now_us().
  void record_measured(std::string name, double ts_us, double dur_us,
                       std::vector<TraceArg> args = {});

  /// Records one complete modeled span on rank `rank`'s track; t0/t1 are
  /// modeled seconds on the simulated timeline.
  void record_modeled(std::string name, int rank, double t0_s, double t1_s,
                      std::vector<TraceArg> args = {});

  /// Recorded event count (tests / sanity checks).
  [[nodiscard]] std::size_t event_count() const;

  /// Largest modeled end timestamp recorded so far, in seconds — by
  /// construction equal to the OverlapTimeline makespan the modeled spans
  /// were placed by.
  [[nodiscard]] double modeled_end_seconds() const;

  /// Chrome trace-event JSON ({"traceEvents": [...]}) with process/thread
  /// metadata naming the measured and modeled tracks.
  [[nodiscard]] std::string to_json() const;
  void write(const std::string& path) const;

 private:
  struct Event {
    std::string name;
    int pid = kMeasuredPid;
    int tid = 0;
    double ts_us = 0.0;
    double dur_us = 0.0;
    std::vector<TraceArg> args;
  };

  /// Small stable per-thread track id (0, 1, 2, ... in first-seen order).
  int thread_track();

  std::chrono::steady_clock::time_point origin_;
  mutable std::mutex mutex_;
  std::vector<Event> events_;
  std::unordered_map<std::thread::id, int> thread_ids_;
  int max_rank_track_ = -1;
  double modeled_end_us_ = 0.0;
};

/// RAII measured span: records [construction, destruction) on the calling
/// thread's measured track. A null tracer makes every operation a no-op —
/// the single-branch telemetry-off path.
class Span {
 public:
  Span(Tracer* tracer, std::string name)
      : tracer_(tracer),
        name_(tracer != nullptr ? std::move(name) : std::string()),
        t0_us_(tracer != nullptr ? tracer->now_us() : 0.0) {}

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void arg(std::string key, double value) {
    if (tracer_ != nullptr) args_.push_back({std::move(key), value});
  }

  ~Span() {
    if (tracer_ != nullptr) {
      tracer_->record_measured(std::move(name_), t0_us_,
                               tracer_->now_us() - t0_us_, std::move(args_));
    }
  }

 private:
  Tracer* tracer_;
  std::string name_;
  double t0_us_;
  std::vector<TraceArg> args_;
};

}  // namespace pastis::obs
