#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

namespace pastis::obs {

namespace {

/// JSON has no Infinity/NaN: non-finite values export as null.
void append_json_number(std::ostringstream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  std::ostringstream n;
  n.precision(17);
  n << v;
  os << n.str();
}

void append_json_string(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

std::string prom_name(const std::string& name) {
  std::string out = "pastis_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

// ---- Histogram --------------------------------------------------------------

Histogram::Histogram(std::vector<double> bucket_bounds)
    : bounds_(std::move(bucket_bounds)) {
  if (bounds_.empty()) bounds_ = default_latency_bounds();
  std::sort(bounds_.begin(), bounds_.end());
  counts_.assign(bounds_.size() + 1, 0);  // + overflow bucket
}

std::vector<double> Histogram::default_latency_bounds() {
  return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0};
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto b = static_cast<std::size_t>(it - bounds_.begin());
  std::lock_guard lock(mutex_);
  ++counts_[b];
  ++count_;
  sum_ += v;
  if (count_ == 1) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  std::lock_guard lock(mutex_);
  s.counts = counts_;
  s.count = count_;
  s.sum = sum_;
  s.min = min_;
  s.max = max_;
  return s;
}

double Histogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    const auto next = seen + counts[b];
    if (static_cast<double>(next) >= rank) {
      // Interpolate within the landing bucket, clamped to the exact
      // observed range (tight for the first/last buckets, where the
      // nominal bucket edges are -inf / +inf).
      const double lo = b == 0 ? min : std::max(min, bounds[b - 1]);
      const double hi = b < bounds.size() ? std::min(max, bounds[b]) : max;
      const double frac =
          counts[b] == 0
              ? 0.0
              : (rank - static_cast<double>(seen)) /
                    static_cast<double>(counts[b]);
      return std::clamp(lo + (hi - lo) * frac, min, max);
    }
    seen = next;
  }
  return max;
}

// ---- MetricsRegistry --------------------------------------------------------

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::span<const double> bounds) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(
        std::vector<double>(bounds.begin(), bounds.end()));
  }
  return *slot;
}

MinAvgMaxMetric& MetricsRegistry::min_avg_max(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = min_avg_max_[name];
  if (!slot) slot = std::make_unique<MinAvgMaxMetric>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot s;
  std::lock_guard lock(mutex_);
  for (const auto& [name, c] : counters_) s.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) s.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) s.histograms[name] = h->snapshot();
  for (const auto& [name, m] : min_avg_max_) {
    s.min_avg_max[name] = m->snapshot();
  }
  return s;
}

std::string MetricsRegistry::to_json() const {
  const MetricsSnapshot s = snapshot();
  std::ostringstream os;
  os << "{\n  \"schema\": \"pastis.metrics.v1\",\n";

  const auto scalar_section = [&](const char* key,
                                  const std::map<std::string, double>& m,
                                  bool trailing_comma) {
    os << "  \"" << key << "\": {";
    bool first = true;
    for (const auto& [name, v] : m) {
      os << (first ? "\n    " : ",\n    ");
      append_json_string(os, name);
      os << ": ";
      append_json_number(os, v);
      first = false;
    }
    os << (first ? "}" : "\n  }") << (trailing_comma ? ",\n" : "\n");
  };
  scalar_section("counters", s.counters, true);
  scalar_section("gauges", s.gauges, true);

  os << "  \"histograms\": {";
  {
    bool first = true;
    for (const auto& [name, h] : s.histograms) {
      os << (first ? "\n    " : ",\n    ");
      append_json_string(os, name);
      os << ": {\"count\": " << h.count << ", \"sum\": ";
      append_json_number(os, h.sum);
      const auto opt = [&](const char* k, double v) {
        os << ", \"" << k << "\": ";
        if (h.count == 0) {
          os << "null";  // empty histogram: no observed range / quantiles
        } else {
          append_json_number(os, v);
        }
      };
      opt("min", h.min);
      opt("max", h.max);
      opt("p50", h.quantile(0.50));
      opt("p95", h.quantile(0.95));
      opt("p99", h.quantile(0.99));
      os << ", \"buckets\": [";
      for (std::size_t b = 0; b < h.counts.size(); ++b) {
        if (b > 0) os << ", ";
        os << "{\"le\": ";
        if (b < h.bounds.size()) {
          append_json_number(os, h.bounds[b]);
        } else {
          os << "null";  // the +inf overflow bucket
        }
        os << ", \"count\": " << h.counts[b] << "}";
      }
      os << "]}";
      first = false;
    }
    os << (first ? "}," : "\n  },") << "\n";
  }

  os << "  \"min_avg_max\": {";
  {
    bool first = true;
    for (const auto& [name, m] : s.min_avg_max) {
      os << (first ? "\n    " : ",\n    ");
      append_json_string(os, name);
      os << ": {\"count\": " << m.count << ", \"min\": ";
      // count == 0 leaves min/max at ±infinity — exported as null, never
      // as an (invalid) Infinity literal.
      if (m.count == 0) {
        os << "null, \"max\": null";
      } else {
        append_json_number(os, m.min);
        os << ", \"max\": ";
        append_json_number(os, m.max);
      }
      os << ", \"avg\": ";
      append_json_number(os, m.avg());
      os << ", \"imbalance_pct\": ";
      if (m.count == 0) {
        os << "null";
      } else {
        append_json_number(os, m.imbalance_pct());
      }
      os << "}";
      first = false;
    }
    os << (first ? "}" : "\n  }") << "\n";
  }
  os << "}\n";
  return os.str();
}

void MetricsRegistry::write_json(const std::string& path) const {
  std::ofstream out(path);
  out << to_json();
}

std::string MetricsRegistry::to_prometheus_text() const {
  const MetricsSnapshot s = snapshot();
  std::ostringstream os;
  os.precision(17);
  for (const auto& [name, v] : s.counters) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << " counter\n" << n << " " << v << "\n";
  }
  for (const auto& [name, v] : s.gauges) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << " gauge\n" << n << " " << v << "\n";
  }
  for (const auto& [name, h] : s.histograms) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << " histogram\n";
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      cum += h.counts[b];
      os << n << "_bucket{le=\"";
      if (b < h.bounds.size()) {
        os << h.bounds[b];
      } else {
        os << "+Inf";
      }
      os << "\"} " << cum << "\n";
    }
    os << n << "_sum " << h.sum << "\n" << n << "_count " << h.count << "\n";
  }
  for (const auto& [name, m] : s.min_avg_max) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << "_avg gauge\n" << n << "_avg " << m.avg() << "\n";
    if (m.count > 0) {
      os << "# TYPE " << n << "_min gauge\n" << n << "_min " << m.min << "\n";
      os << "# TYPE " << n << "_max gauge\n" << n << "_max " << m.max << "\n";
    }
  }
  return os.str();
}

}  // namespace pastis::obs
